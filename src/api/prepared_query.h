#ifndef NATIX_API_PREPARED_QUERY_H_
#define NATIX_API_PREPARED_QUERY_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "obs/stats.h"
#include "qe/plan.h"
#include "storage/node_store.h"
#include "storage/stored_node.h"
#include "translate/translator.h"

namespace natix {

/// Counters from the most recent evaluation of one execution.
struct ExecutionStats {
  /// Tuples produced by location-step (unnest-map) iterators.
  uint64_t step_tuples = 0;
  /// Pages faulted into the buffer pool during the evaluation.
  uint64_t page_faults = 0;
  /// NVM bytecode instructions retired by subscript programs.
  uint64_t nvm_insns = 0;
};

/// A prepared XPath query: the immutable product of the full compiler
/// pipeline of Sec. 5.1 (parse, normalize, semantic analysis, rewrite,
/// translation into algebra, property inference, code generation,
/// static verification), bound to a store.
///
/// A PreparedQuery is deeply const and therefore freely shareable:
/// any number of threads may hold the same shared_ptr, read the explain
/// surfaces, and instantiate executions concurrently. All mutable
/// evaluation state lives in the Execution objects it vends; each
/// Execution is single-threaded and pins its query alive.
///
/// This is the compile-once / execute-many API: prepare a query once
/// (or let Database::Prepare serve it from the plan cache) and create
/// one Execution per thread or call site.
class PreparedQuery : public std::enable_shared_from_this<PreparedQuery> {
 public:
  /// Compiles `xpath` for `store` with the given translation strategy.
  static StatusOr<std::shared_ptr<const PreparedQuery>> Prepare(
      std::string_view xpath, const storage::NodeStore* store,
      const translate::TranslatorOptions& options =
          translate::TranslatorOptions::Improved());

  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  class Execution;

  /// Instantiates an independent execution of this query: a private
  /// iterator tree, register file and variable bindings. With
  /// `collect_stats` the execution carries per-operator counters
  /// (Execution::Stats / ExplainAnalyze); without it the execution runs
  /// uninstrumented. Thread-safe; the Execution keeps the query alive.
  StatusOr<std::unique_ptr<Execution>> NewExecution(
      bool collect_stats = false) const;

  /// The query's static result type.
  xpath::ExprType result_type() const { return plan_->result_type(); }

  /// The XPath text this query was compiled from.
  const std::string& text() const { return text_; }

  /// Multi-line rendering of the translated logical plan.
  const std::string& ExplainLogical() const { return plan_->logical_plan(); }

  /// The physical execution plan: the iterator tree with the attribute
  /// manager's register assignments (aliases marked).
  const std::string& ExplainPhysical() const {
    return plan_->physical_plan();
  }

  /// One-line verdict of the static plan verifier (Layers 1-4).
  const std::string& VerificationReport() const {
    return plan_->verification();
  }

  /// The fusability segmentation: maximal non-materializing, effect-free
  /// pipeline segments with their materialization/blocking boundaries
  /// (docs/STATIC-ANALYSIS.md).
  const analysis::Segmentation& Segments() const {
    return plan_->segments();
  }

  /// Human-readable segment listing (natixq --explain).
  const std::string& ExplainSegments() const {
    return plan_->segments_text();
  }

  /// The logical plan annotated per operator with its inferred stream
  /// properties (cardinality, ordering, duplicate-freedom, node class).
  const std::string& ExplainProperties() const {
    return plan_->properties_plan();
  }

  /// JSON rendering of the annotated operator tree.
  const std::string& ExplainJson() const { return plan_->properties_json(); }

  /// The property-justified rewrites applied during translation.
  const algebra::RewriteLog& rewrites() const { return plan_->rewrites(); }

  /// Whether the plan's result stream is statically guaranteed to arrive
  /// in document order, letting Evaluate* skip the final sort.
  bool ResultDocumentOrdered() const {
    return plan_->result_document_ordered();
  }

  const qe::PlanTemplate& plan() const { return *plan_; }
  const storage::NodeStore* store() const { return store_; }

 private:
  PreparedQuery(const storage::NodeStore* store,
                std::unique_ptr<qe::PlanTemplate> plan, std::string text)
      : store_(store), plan_(std::move(plan)), text_(std::move(text)) {}

  const storage::NodeStore* store_;
  std::unique_ptr<const qe::PlanTemplate> plan_;
  std::string text_;
};

/// One execution of a prepared query: the per-call state (context node,
/// $variables, register file, caches, optional per-operator stats).
/// Reusable across any number of Evaluate* calls, but single-threaded;
/// concurrency comes from one Execution per thread over the shared
/// PreparedQuery.
class PreparedQuery::Execution {
 public:
  Execution(const Execution&) = delete;
  Execution& operator=(const Execution&) = delete;

  /// Binds an XPath $variable (atomic values only).
  void SetVariable(const std::string& name, runtime::Value value);

  /// Evaluates a node-set query from `context`. Results carry set
  /// semantics; with `document_order` they are sorted, otherwise they
  /// arrive in plan order.
  StatusOr<std::vector<storage::StoredNode>> EvaluateNodes(
      storage::NodeId context, bool document_order = true);

  /// Evaluates a scalar (boolean/number/string) query from `context`.
  StatusOr<runtime::Value> EvaluateValue(storage::NodeId context);

  /// Evaluates any query and converts the result to a string: scalar
  /// results via string(), node-set results via the string-value of the
  /// node first in document order ("" for an empty result).
  StatusOr<std::string> EvaluateString(storage::NodeId context);

  /// Evaluates any query and converts the result with number() / the
  /// node-set conversion rules.
  StatusOr<double> EvaluateNumber(storage::NodeId context);

  /// Evaluates any query and converts with boolean() (node sets:
  /// non-emptiness — evaluated without sorting, and scalar plans convert
  /// their single value).
  StatusOr<bool> EvaluateBoolean(storage::NodeId context);

  /// Ablation knob (benchmarks, differential tests): force the final
  /// result sort even when inference proved it redundant.
  void SetForceResultSort(bool force) {
    context_->set_force_result_sort(force);
  }

  /// Absolute steady-clock deadline (base/clock.h MonotonicNanos) for
  /// subsequent Evaluate* calls: the drain loop aborts past it with
  /// kDeadlineExceeded and closes the pipeline early. 0 clears. Serving
  /// binds one per request so queue wait counts against the budget.
  void SetDeadlineNs(uint64_t abs_ns) {
    context_->set_deadline_ns(abs_ns);
  }

  /// External cancel flag checked alongside the deadline (cooperative
  /// cancellation: server shutdown, client disconnect). Must outlive
  /// this execution; null clears.
  void SetCancelFlag(const std::atomic<bool>* flag) {
    context_->set_cancel_flag(flag);
  }

  /// Counters from the most recent Evaluate* call.
  const ExecutionStats& last_stats() const { return last_stats_; }

  /// The per-operator stats collector, or null when the execution was
  /// instantiated without `collect_stats`. Counters accumulate across
  /// Evaluate* calls until QueryStats::Reset().
  const obs::QueryStats* Stats() const { return context_->stats(); }
  obs::QueryStats* MutableStats() { return context_->stats(); }

  /// The EXPLAIN ANALYZE rendering of the accumulated per-operator
  /// counters ("" when instantiated without stats collection).
  std::string ExplainAnalyze() const {
    return context_->stats() == nullptr ? std::string()
                                        : context_->stats()->RenderAnalyze();
  }

  const PreparedQuery& prepared() const { return *prepared_; }

 private:
  friend class PreparedQuery;

  Execution(std::shared_ptr<const PreparedQuery> prepared,
            std::unique_ptr<qe::ExecutionContext> context)
      : prepared_(std::move(prepared)),
        store_(prepared_->store()),
        context_(std::move(context)) {}

  Status BindContext(storage::NodeId context);
  void BeginStats();
  void EndStats();
  /// Bind + execute + stats/registry accounting for node-set plans.
  StatusOr<std::vector<runtime::NodeRef>> RunNodes(storage::NodeId context);

  /// Pins the template (and its operator tree / property map) for as
  /// long as any execution is alive.
  std::shared_ptr<const PreparedQuery> prepared_;
  const storage::NodeStore* store_;
  std::unique_ptr<qe::ExecutionContext> context_;
  ExecutionStats last_stats_;
  uint64_t tuples_baseline_ = 0;
  uint64_t nvm_baseline_ = 0;
  uint64_t exec_begin_ns_ = 0;
  obs::BufferCounters buffer_baseline_;
};

}  // namespace natix

#endif  // NATIX_API_PREPARED_QUERY_H_
