#ifndef NATIX_API_DATABASE_H_
#define NATIX_API_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/plan_cache.h"
#include "api/prepared_query.h"
#include "api/query.h"
#include "base/statusor.h"
#include "storage/node_store.h"
#include "storage/stored_node.h"

namespace natix {

/// The top-level facade of the library: a native XML database holding
/// documents in a page-based store, compiling and executing XPath 1.0
/// queries through the algebraic pipeline.
///
///   auto db = natix::Database::CreateTemp();
///   db->LoadDocument("books", xml_text);
///   auto titles = db->QueryNodes("books", "/catalog/book/title");
///
/// Concurrent use: Prepare() hands out immutable plans that any number
/// of threads can instantiate executions from; the buffer pool is
/// striped (`Options::buffer_shards`) so those executions don't
/// serialize on one pool latch. Document loading is not concurrent with
/// query execution.
class Database {
 public:
  struct Options {
    Options() {}
    /// Buffer pool size in pages (8 KiB each).
    size_t buffer_pages = 4096;
    /// Number of buffer-pool stripes (mutex + LRU + page table each).
    /// 0 picks a default from the hardware concurrency; 1 reproduces
    /// the classic single-lock pool.
    size_t buffer_shards = 0;
    /// Capacity of the prepared-plan LRU cache consulted by Compile()
    /// and Prepare(). 0 disables plan caching.
    size_t plan_cache_capacity = 64;

    /// Checks the configuration for nonsense that would technically run
    /// but thrash or deadlock-by-starvation in practice:
    ///  - buffer_pages below the root-to-leaf working set (a handful of
    ///    index inner pages plus record/extent pages per open iterator;
    ///    16 pages is the floor under which even single queries thrash),
    ///  - fewer than 2 pages per shard (a 1-page shard cannot hold a
    ///    pinned page and fault a second one through the same stripe).
    Status Validate() const;
    /// The shard count actually used: buffer_shards, or the hardware
    /// default when 0 (clamped so every shard keeps >= 2 pages).
    size_t EffectiveShards() const;
  };

  /// Creates a new database file (truncating any existing one).
  static StatusOr<std::unique_ptr<Database>> Create(
      const std::string& path, const Options& options = Options());
  /// Opens an existing database file.
  static StatusOr<std::unique_ptr<Database>> Open(
      const std::string& path, const Options& options = Options());
  /// Creates an anonymous scratch database (removed when closed).
  static StatusOr<std::unique_ptr<Database>> CreateTemp(
      const Options& options = Options());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses `xml_text` and stores it as document `name`. Invalidates
  /// the plan cache (prepared plans bake in name-dictionary ids).
  StatusOr<storage::DocumentInfo> LoadDocument(std::string_view name,
                                               std::string_view xml_text);
  /// Loads a document from a file on disk.
  StatusOr<storage::DocumentInfo> LoadDocumentFile(std::string_view name,
                                                   const std::string& path);

  /// The document node of document `name`.
  StatusOr<storage::StoredNode> Root(std::string_view name) const;

  /// Compiles (or serves from the plan cache) an immutable, shareable
  /// prepared query. This is the concurrent API: one Prepare, then one
  /// PreparedQuery::NewExecution per thread.
  StatusOr<std::shared_ptr<const PreparedQuery>> Prepare(
      std::string_view xpath,
      const translate::TranslatorOptions& options =
          translate::TranslatorOptions::Improved()) const;

  /// Compiles a reusable query (plan served from the cache when
  /// possible). With `collect_stats` the query carries the per-operator
  /// EXPLAIN ANALYZE counters (CompiledQuery::Stats).
  StatusOr<std::unique_ptr<CompiledQuery>> Compile(
      std::string_view xpath,
      const translate::TranslatorOptions& options =
          translate::TranslatorOptions::Improved(),
      bool collect_stats = false) const;

  // One-shot helpers, evaluated with the document node of `document` as
  // the context node.
  StatusOr<std::vector<storage::StoredNode>> QueryNodes(
      std::string_view document, std::string_view xpath) const;
  StatusOr<std::string> QueryString(std::string_view document,
                                    std::string_view xpath) const;
  StatusOr<double> QueryNumber(std::string_view document,
                               std::string_view xpath) const;
  StatusOr<bool> QueryBoolean(std::string_view document,
                              std::string_view xpath) const;

  /// Persists all state to disk.
  Status Flush();

  // -- process-wide observability (src/obs; no-ops under NATIX_OBS=OFF) --

  /// Starts collecting pipeline/executor spans; affects every database
  /// in the process (the tracer is process-global).
  static void StartTrace();
  /// Stops tracing and returns the trace as Chrome trace_event JSON
  /// (loadable in Perfetto / chrome://tracing).
  static std::string StopTrace();
  /// JSON snapshot of the process-wide metrics registry (latency
  /// histograms and counters fed by every compile/execute).
  static std::string MetricsSnapshot();
  /// Queries whose execution time reaches `ns` are recorded in the
  /// slow-query log (0 logs everything; see obs::SlowQueryLog to
  /// disable again or read entries structurally).
  static void SetSlowQueryThresholdNs(uint64_t ns);
  /// Human-readable dump of the slow-query log ring buffer.
  static std::string SlowQueryLogText();

  storage::NodeStore* store() { return store_.get(); }
  const storage::NodeStore* store() const { return store_.get(); }

  /// The prepared-plan cache (introspection: size, hits, evictions).
  const PlanCache& plan_cache() const { return plan_cache_; }

 private:
  Database(std::unique_ptr<storage::NodeStore> store, const Options& options)
      : store_(std::move(store)),
        plan_cache_(options.plan_cache_capacity) {}

  std::unique_ptr<storage::NodeStore> store_;
  /// mutable: Compile()/Prepare() are logically const reads of the
  /// database; the cache is internally synchronized.
  mutable PlanCache plan_cache_;
};

}  // namespace natix

#endif  // NATIX_API_DATABASE_H_
