#include "api/query.h"

#include "base/xpath_number.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "qe/codegen.h"
#include "runtime/conversions.h"
#include "xpath/fold.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix {

namespace {

/// The compiler pipeline of Sec. 5.1. Each phase emits its own trace
/// span; this helper exists so the caller can time and account for the
/// whole pipeline once, success or failure.
StatusOr<std::unique_ptr<qe::Plan>> RunCompilePipeline(
    std::string_view xpath, const storage::NodeStore* store,
    const translate::TranslatorOptions& options, bool collect_stats) {
  NATIX_ASSIGN_OR_RETURN(xpath::ExprPtr ast, xpath::ParseXPath(xpath));
  NATIX_RETURN_IF_ERROR(xpath::Analyze(ast.get()));
  xpath::FoldConstants(ast.get());
  xpath::Normalize(ast.get());
  NATIX_ASSIGN_OR_RETURN(translate::TranslationResult translation,
                         translate::Translate(*ast, options));
  return qe::Codegen::Compile(translation, store, collect_stats);
}

}  // namespace

StatusOr<std::unique_ptr<CompiledQuery>> CompiledQuery::Compile(
    std::string_view xpath, const storage::NodeStore* store,
    const translate::TranslatorOptions& options, bool collect_stats) {
  obs::ScopedSpan span("compile", xpath);
  const uint64_t begin_ns = obs::MonotonicNowNs();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  auto plan = RunCompilePipeline(xpath, store, options, collect_stats);
  if (!plan.ok()) {
    metrics.compile_errors.Add();
    return plan.status();
  }
  metrics.compile_ns.Record(obs::MonotonicNowNs() - begin_ns);
  metrics.queries_compiled.Add();
  auto query = std::unique_ptr<CompiledQuery>(
      new CompiledQuery(store, std::move(plan).value()));
  query->text_ = std::string(xpath);
  return query;
}

void CompiledQuery::SetVariable(const std::string& name,
                                runtime::Value value) {
  plan_->SetVariable(name, std::move(value));
}

Status CompiledQuery::BindContext(storage::NodeId context) {
  storage::NodeRecord record;
  NATIX_RETURN_IF_ERROR(store_->ReadNode(context, &record));
  plan_->SetContextNode(runtime::NodeRef::Make(context, record.order));
  BeginStats();
  return Status::OK();
}

void CompiledQuery::BeginStats() {
  tuples_baseline_ = plan_->state()->tuples_produced;
  buffer_baseline_ = obs::CaptureBufferCounters(store_->buffer_manager());
  exec_begin_ns_ = obs::MonotonicNowNs();
}

void CompiledQuery::EndStats() {
  last_stats_.step_tuples =
      plan_->state()->tuples_produced - tuples_baseline_;
  obs::BufferCounters now =
      obs::CaptureBufferCounters(store_->buffer_manager());
  last_stats_.page_faults = now.page_reads - buffer_baseline_.page_reads;
  if (obs::QueryStats* stats = plan_->stats()) {
    // Query-level buffer deltas accumulate across evaluations alongside
    // the per-operator counters.
    stats->buffer() += obs::BufferCounters{
        now.page_reads - buffer_baseline_.page_reads,
        now.page_hits - buffer_baseline_.page_hits,
        now.page_writes - buffer_baseline_.page_writes,
        now.evictions - buffer_baseline_.evictions};
    stats->RecordExecution();
  }

  // Feed the process-wide registry (compiles away under NATIX_OBS=OFF).
  const uint64_t exec_ns = obs::MonotonicNowNs() - exec_begin_ns_;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.exec_ns.Record(exec_ns);
  metrics.pages_per_query.Record(last_stats_.page_faults);
  metrics.tuples_per_query.Record(last_stats_.step_tuples);
  metrics.queries_executed.Add();
  obs::SlowQueryLog& slow_log = metrics.slow_log();
  if (slow_log.ShouldLog(exec_ns)) {
    metrics.slow_queries.Add();
    obs::SlowQueryEntry entry;
    entry.xpath = text_;
    entry.exec_ns = exec_ns;
    entry.page_faults = last_stats_.page_faults;
    entry.tuples = last_stats_.step_tuples;
    entry.analyze = ExplainAnalyze();
    slow_log.Record(std::move(entry));
  }
}

StatusOr<std::vector<runtime::NodeRef>> CompiledQuery::RunNodes(
    storage::NodeId context) {
  NATIX_RETURN_IF_ERROR(BindContext(context));
  StatusOr<std::vector<runtime::NodeRef>> refs = plan_->ExecuteNodes();
  if (!refs.ok()) {
    obs::MetricsRegistry::Global().exec_errors.Add();
    return refs.status();
  }
  EndStats();
  return refs;
}

StatusOr<std::vector<storage::StoredNode>> CompiledQuery::EvaluateNodes(
    storage::NodeId context, bool document_order) {
  NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                         RunNodes(context));
  // The sort is skipped when property inference proved the plan's result
  // stream arrives document-ordered already (the oracle asserts the claim
  // under NATIX_VERIFY_PLANS).
  if (document_order && (plan_->force_result_sort() ||
                         !plan_->result_document_ordered())) {
    obs::ScopedSpan span("exec/sort");
    qe::SortResultNodes(&refs);
  }
  std::vector<storage::StoredNode> nodes;
  nodes.reserve(refs.size());
  for (const runtime::NodeRef& ref : refs) {
    nodes.emplace_back(store_, ref.node_id());
  }
  return nodes;
}

StatusOr<runtime::Value> CompiledQuery::EvaluateValue(
    storage::NodeId context) {
  NATIX_RETURN_IF_ERROR(BindContext(context));
  StatusOr<runtime::Value> value = plan_->ExecuteValue();
  if (!value.ok()) {
    obs::MetricsRegistry::Global().exec_errors.Add();
    return value.status();
  }
  EndStats();
  return value;
}

StatusOr<double> CompiledQuery::EvaluateNumber(storage::NodeId context) {
  if (result_type() == xpath::ExprType::kNodeSet ||
      result_type() == xpath::ExprType::kString) {
    NATIX_ASSIGN_OR_RETURN(std::string s, EvaluateString(context));
    return StringToXPathNumber(s);
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToNumber(value, ctx);
}

StatusOr<bool> CompiledQuery::EvaluateBoolean(storage::NodeId context) {
  if (result_type() == xpath::ExprType::kNodeSet) {
    NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                           RunNodes(context));
    return !refs.empty();
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToBoolean(value, ctx);
}

StatusOr<std::string> CompiledQuery::EvaluateString(
    storage::NodeId context) {
  if (result_type() == xpath::ExprType::kNodeSet) {
    NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                           RunNodes(context));
    if (refs.empty()) return std::string();
    if (!plan_->result_document_ordered()) qe::SortResultNodes(&refs);
    return store_->StringValue(refs.front().node_id());
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToStringValue(value, ctx);
}

}  // namespace natix
