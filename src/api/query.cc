#include "api/query.h"

#include "base/xpath_number.h"

#include "qe/codegen.h"
#include "runtime/conversions.h"
#include "xpath/fold.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix {

StatusOr<std::unique_ptr<CompiledQuery>> CompiledQuery::Compile(
    std::string_view xpath, const storage::NodeStore* store,
    const translate::TranslatorOptions& options, bool collect_stats) {
  // The compiler pipeline of Sec. 5.1.
  NATIX_ASSIGN_OR_RETURN(xpath::ExprPtr ast, xpath::ParseXPath(xpath));
  NATIX_RETURN_IF_ERROR(xpath::Analyze(ast.get()));
  xpath::FoldConstants(ast.get());
  xpath::Normalize(ast.get());
  NATIX_ASSIGN_OR_RETURN(translate::TranslationResult translation,
                         translate::Translate(*ast, options));
  NATIX_ASSIGN_OR_RETURN(
      std::unique_ptr<qe::Plan> plan,
      qe::Codegen::Compile(translation, store, collect_stats));
  return std::unique_ptr<CompiledQuery>(
      new CompiledQuery(store, std::move(plan)));
}

void CompiledQuery::SetVariable(const std::string& name,
                                runtime::Value value) {
  plan_->SetVariable(name, std::move(value));
}

Status CompiledQuery::BindContext(storage::NodeId context) {
  storage::NodeRecord record;
  NATIX_RETURN_IF_ERROR(store_->ReadNode(context, &record));
  plan_->SetContextNode(runtime::NodeRef::Make(context, record.order));
  BeginStats();
  return Status::OK();
}

void CompiledQuery::BeginStats() {
  tuples_baseline_ = plan_->state()->tuples_produced;
  buffer_baseline_ = obs::CaptureBufferCounters(store_->buffer_manager());
}

void CompiledQuery::EndStats() {
  last_stats_.step_tuples =
      plan_->state()->tuples_produced - tuples_baseline_;
  obs::BufferCounters now =
      obs::CaptureBufferCounters(store_->buffer_manager());
  last_stats_.page_faults = now.page_reads - buffer_baseline_.page_reads;
  if (obs::QueryStats* stats = plan_->stats()) {
    // Query-level buffer deltas accumulate across evaluations alongside
    // the per-operator counters.
    stats->buffer() += obs::BufferCounters{
        now.page_reads - buffer_baseline_.page_reads,
        now.page_hits - buffer_baseline_.page_hits,
        now.page_writes - buffer_baseline_.page_writes,
        now.evictions - buffer_baseline_.evictions};
    stats->RecordExecution();
  }
}

StatusOr<std::vector<storage::StoredNode>> CompiledQuery::EvaluateNodes(
    storage::NodeId context, bool document_order) {
  NATIX_RETURN_IF_ERROR(BindContext(context));
  NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                         plan_->ExecuteNodes());
  EndStats();
  if (document_order) qe::SortResultNodes(&refs);
  std::vector<storage::StoredNode> nodes;
  nodes.reserve(refs.size());
  for (const runtime::NodeRef& ref : refs) {
    nodes.emplace_back(store_, ref.node_id());
  }
  return nodes;
}

StatusOr<runtime::Value> CompiledQuery::EvaluateValue(
    storage::NodeId context) {
  NATIX_RETURN_IF_ERROR(BindContext(context));
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, plan_->ExecuteValue());
  EndStats();
  return value;
}

StatusOr<double> CompiledQuery::EvaluateNumber(storage::NodeId context) {
  if (result_type() == xpath::ExprType::kNodeSet ||
      result_type() == xpath::ExprType::kString) {
    NATIX_ASSIGN_OR_RETURN(std::string s, EvaluateString(context));
    return StringToXPathNumber(s);
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToNumber(value, ctx);
}

StatusOr<bool> CompiledQuery::EvaluateBoolean(storage::NodeId context) {
  if (result_type() == xpath::ExprType::kNodeSet) {
    NATIX_RETURN_IF_ERROR(BindContext(context));
    NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                           plan_->ExecuteNodes());
    EndStats();
    return !refs.empty();
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToBoolean(value, ctx);
}

StatusOr<std::string> CompiledQuery::EvaluateString(
    storage::NodeId context) {
  if (result_type() == xpath::ExprType::kNodeSet) {
    NATIX_RETURN_IF_ERROR(BindContext(context));
    NATIX_ASSIGN_OR_RETURN(std::vector<runtime::NodeRef> refs,
                           plan_->ExecuteNodes());
    EndStats();
    if (refs.empty()) return std::string();
    qe::SortResultNodes(&refs);
    return store_->StringValue(refs.front().node_id());
  }
  NATIX_ASSIGN_OR_RETURN(runtime::Value value, EvaluateValue(context));
  runtime::EvalContext ctx;
  ctx.store = store_;
  return runtime::ToStringValue(value, ctx);
}

}  // namespace natix
