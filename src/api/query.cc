#include "api/query.h"

namespace natix {

StatusOr<std::unique_ptr<CompiledQuery>> CompiledQuery::Compile(
    std::string_view xpath, const storage::NodeStore* store,
    const translate::TranslatorOptions& options, bool collect_stats) {
  NATIX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                         PreparedQuery::Prepare(xpath, store, options));
  return FromPrepared(std::move(prepared), collect_stats);
}

StatusOr<std::unique_ptr<CompiledQuery>> CompiledQuery::FromPrepared(
    std::shared_ptr<const PreparedQuery> prepared, bool collect_stats) {
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<PreparedQuery::Execution> exec,
                         prepared->NewExecution(collect_stats));
  return std::unique_ptr<CompiledQuery>(
      new CompiledQuery(std::move(prepared), std::move(exec)));
}

}  // namespace natix
