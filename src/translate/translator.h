#ifndef NATIX_TRANSLATE_TRANSLATOR_H_
#define NATIX_TRANSLATE_TRANSLATOR_H_

#include <string>

#include "algebra/operator.h"
#include "algebra/rewriter.h"
#include "base/statusor.h"
#include "xpath/ast.h"

namespace natix::translate {

/// Translation strategy switches. The defaults implement the improved
/// translation of Sec. 4; Canonical() yields the textbook translation of
/// Sec. 3 (used as the ablation baseline in bench/).
struct TranslatorOptions {
  /// Sec. 4.2.1: translate outer location paths as a stacked operator
  /// pipeline instead of a chain of d-joins.
  bool stacked_outer_paths = true;
  /// Sec. 4.1: eliminate duplicates right after every ppd step instead of
  /// only once at the end.
  bool push_duplicate_elimination = true;
  /// Sec. 4.2.2: wrap dependent steps of inner (predicate) paths in the
  /// MemoX operator when their context nodes can repeat.
  bool memoize_inner_paths = true;
  /// Sec. 4.3.2: evaluate cheap predicate conjuncts before expensive
  /// ones, materializing expensive results through chi^mat.
  bool split_expensive_predicates = true;
  /// Extension beyond the paper (its Sec. 4.1 cites Hidders/Michiels [13]
  /// as future work): infer duplicate-freeness and drop redundant
  /// duplicate eliminations; also fold away constant-true selections.
  bool simplify_plan = true;
  /// Run the analysis-justified NVM bytecode optimizer over every
  /// compiled subscript program (docs/NVM-ANALYSIS.md). Off is the
  /// ablation baseline in bench/. Orthogonal to the plan-level switches,
  /// so Canonical() leaves it on.
  bool optimize_nvm = true;
  /// Positional early exit (docs/LIMIT-PUSHDOWN.md): rewrite
  /// position() = k / < k / <= k predicates (including the numeric
  /// literal form [3]) into a Limit operator pushed down to the
  /// producing scan, so the pipeline closes after the k-th binding.
  /// Effective only together with simplify_plan; off is the ablation
  /// baseline and the differential-fuzz switch.
  bool limit_pushdown = true;
  /// When > 0 and the query yields a node set, cap the result at the
  /// first `result_limit` nodes in document order (paginated serving).
  /// Plans whose result stream is provably doc-ordered close their
  /// pipeline — including the underlying page scans — after the k-th
  /// binding; other plans gain an in-plan document-order sort below the
  /// cap, so the bound is exact either way.
  uint64_t result_limit = 0;

  static TranslatorOptions Canonical() {
    return TranslatorOptions{false, false, false, false, false};
  }
  static TranslatorOptions Improved() { return TranslatorOptions{}; }
};

/// The output of translation: an algebra plan plus how to read its result.
struct TranslationResult {
  algebra::OpPtr plan;
  /// Attribute carrying the result: one node per tuple for node-set
  /// queries, a single scalar tuple otherwise.
  std::string result_attr;
  xpath::ExprType type = xpath::ExprType::kUnknown;
  /// The property-justified simplifications applied to `plan`, each with
  /// the inferred property that proved it sound (empty when the
  /// simplifying rewriter is off).
  algebra::RewriteLog rewrites;
  /// Forwarded from TranslatorOptions::optimize_nvm so codegen knows
  /// whether to run the NVM bytecode optimizer over subscripts.
  bool optimize_nvm = true;
};

/// Reserved attribute names bound by the execution context before the
/// plan runs (the paper's top-level map, Sec. 2.2.2): the context node,
/// context position and context size.
inline constexpr char kContextNodeAttr[] = "cn";
inline constexpr char kContextPositionAttr[] = "cp0";
inline constexpr char kContextSizeAttr[] = "cs0";

/// Translates an analyzed, normalized XPath AST into the logical algebra
/// (step 5 of the compiler pipeline). The AST must have passed Analyze()
/// and Normalize().
StatusOr<TranslationResult> Translate(const xpath::Expr& root,
                                      const TranslatorOptions& options);

}  // namespace natix::translate

#endif  // NATIX_TRANSLATE_TRANSLATOR_H_
