#include "translate/translator.h"

#include <utility>

#include "algebra/rewriter.h"
#include "analysis/plan_verifier.h"
#include "analysis/property_inference.h"
#include "base/logging.h"
#include "obs/trace.h"
#include "xpath/normalizer.h"

namespace natix::translate {

namespace {

using algebra::AggKind;
using algebra::MakeOp;
using algebra::MakeScalar;
using algebra::Operator;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::Scalar;
using algebra::ScalarKind;
using algebra::ScalarPtr;
using runtime::CompareOp;
using xpath::BinaryOp;
using xpath::Expr;
using xpath::ExprKind;
using xpath::ExprType;
using xpath::FunctionId;
using xpath::PredicateInfo;
using xpath::Step;

/// Context position/size attribute names usable by a scalar being built.
struct PosCtx {
  std::string cp = kContextPositionAttr;
  std::string cs = kContextSizeAttr;
};

CompareOp ToCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return CompareOp::kEq;
    case BinaryOp::kNe:
      return CompareOp::kNe;
    case BinaryOp::kLt:
      return CompareOp::kLt;
    case BinaryOp::kLe:
      return CompareOp::kLe;
    case BinaryOp::kGt:
      return CompareOp::kGt;
    default:
      return CompareOp::kGe;
  }
}

/// Mirror for "atomic θ node-set" rewritten as "node-set θ' atomic".
CompareOp Mirror(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and != are symmetric
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

ScalarPtr AttrRef(const std::string& name) {
  ScalarPtr s = MakeScalar(ScalarKind::kAttrRef);
  s->name = name;
  return s;
}

/// A plan fragment producing a tuple sequence whose current context node
/// lives in `attr`.
struct NodeSetPlan {
  OpPtr plan;
  std::string attr;
};

class TranslatorImpl {
 public:
  explicit TranslatorImpl(const TranslatorOptions& options)
      : options_(options) {}

  StatusOr<TranslationResult> Run(const Expr& root) {
    TranslationResult result;
    result.type = root.type;
    if (root.type == ExprType::kNodeSet) {
      NATIX_ASSIGN_OR_RETURN(
          NodeSetPlan ns,
          TranslateNodeSet(root, kContextNodeAttr, /*inner=*/false));
      result.plan = std::move(ns.plan);
      result.result_attr = std::move(ns.attr);
      return result;
    }
    // Scalar query: a single map over the singleton scan.
    PosCtx pos;
    NATIX_ASSIGN_OR_RETURN(ScalarPtr scalar,
                           TranslateScalar(root, kContextNodeAttr, pos));
    OpPtr map = MakeOp(OpKind::kMap);
    map->attr = NewAttr("v");
    map->scalar = std::move(scalar);
    map->children.push_back(MakeOp(OpKind::kSingletonScan));
    result.plan = std::move(map);
    result.result_attr = result.plan->attr;
    return result;
  }

 private:
  std::string NewAttr(const char* prefix) {
    return std::string(prefix) + std::to_string(counter_++);
  }

  // -- Node-set expressions -------------------------------------------------

  StatusOr<NodeSetPlan> TranslateNodeSet(const Expr& e,
                                         const std::string& ctx_attr,
                                         bool inner) {
    switch (e.kind) {
      case ExprKind::kLocationPath:
        return TranslateLocationPath(e, ctx_attr, inner);
      case ExprKind::kPathExpr:
        return TranslatePathExpr(e, ctx_attr, inner);
      case ExprKind::kFilterExpr:
        return TranslateFilterExpr(e, ctx_attr, inner);
      case ExprKind::kUnion:
        return TranslateUnion(e, ctx_attr, inner);
      case ExprKind::kFunctionCall:
        if (static_cast<FunctionId>(e.function_id) == FunctionId::kId) {
          return TranslateId(e, ctx_attr, inner);
        }
        break;
      default:
        break;
    }
    return Status::Internal("expression is not node-set-valued: " +
                            e.ToString());
  }

  /// Sec. 3.1 / 4.1 / 4.2: a location path starting at `ctx_attr`.
  StatusOr<NodeSetPlan> TranslateLocationPath(const Expr& e,
                                              const std::string& ctx_attr,
                                              bool inner) {
    OpPtr plan;
    std::string current = ctx_attr;
    if (e.absolute) {
      // chi_{c0 := root(cn)}(singleton scan)  (Sec. 3.1.2)
      OpPtr map = MakeOp(OpKind::kMap);
      map->attr = NewAttr("c");
      ScalarPtr root_call = MakeScalar(ScalarKind::kFunc);
      root_call->function = FunctionId::kRootInternal;
      root_call->children.push_back(AttrRef(ctx_attr));
      map->scalar = std::move(root_call);
      map->children.push_back(MakeOp(OpKind::kSingletonScan));
      current = map->attr;
      plan = std::move(map);
    } else {
      plan = MakeOp(OpKind::kSingletonScan);
      // The first step's unnest-map reads ctx_attr as a free variable; in
      // stacked mode the steps chain onto the producer directly.
    }
    return TranslateSteps(std::move(plan), current, e.steps, inner,
                          /*had_root_map=*/e.absolute);
  }

  /// Shared step-chain builder. `plan` produces tuples whose context node
  /// is in `current` (or is a bare singleton scan whose context comes in
  /// as the free attribute `current`).
  StatusOr<NodeSetPlan> TranslateSteps(OpPtr plan, std::string current,
                                       const std::vector<Step>& steps,
                                       bool inner, bool had_root_map) {
    if (steps.empty()) {
      // "/" alone: the root map already produced the result.
      if (!had_root_map) {
        return Status::Internal("empty relative location path");
      }
      return NodeSetPlan{std::move(plan), std::move(current)};
    }

    bool any_ppd = false;
    bool use_stack = options_.stacked_outer_paths && !inner;
    bool use_memo = options_.memoize_inner_paths && inner;

    for (size_t i = 0; i < steps.size(); ++i) {
      const Step& step = steps[i];
      std::string out = NewAttr("c");
      bool step_ppd = runtime::AxisIsPpd(step.axis);
      any_ppd = any_ppd || step_ppd;

      if (use_stack) {
        // Sec. 4.2.1: stacked translation — the unnest-map consumes the
        // previous pipeline directly.
        OpPtr unnest = MakeOp(OpKind::kUnnestMap);
        unnest->attr = out;
        unnest->ctx_attr = current;
        unnest->axis = step.axis;
        unnest->test = step.test;
        unnest->children.push_back(std::move(plan));
        plan = std::move(unnest);
        NATIX_ASSIGN_OR_RETURN(
            plan, ApplyPredicates(std::move(plan), step, out,
                                  /*boundary=*/current));
      } else {
        // Sec. 3.1.1: canonical d-join — dependent side evaluates the
        // step for one context node per outer tuple.
        OpPtr unnest = MakeOp(OpKind::kUnnestMap);
        unnest->attr = out;
        unnest->ctx_attr = current;
        unnest->axis = step.axis;
        unnest->test = step.test;
        unnest->children.push_back(MakeOp(OpKind::kSingletonScan));
        OpPtr dep = std::move(unnest);
        NATIX_ASSIGN_OR_RETURN(dep, ApplyPredicates(std::move(dep), step, out,
                                                    /*boundary=*/""));
        // Sec. 4.2.2: memoize the dependent side of inner-path steps
        // whose input context can repeat (the previous step is ppd).
        if (use_memo && i > 0 && runtime::AxisIsPpd(steps[i - 1].axis)) {
          OpPtr memo = MakeOp(OpKind::kMemoX);
          memo->key_attrs = {current};
          memo->children.push_back(std::move(dep));
          dep = std::move(memo);
        }
        OpPtr djoin = MakeOp(OpKind::kDJoin);
        djoin->children.push_back(std::move(plan));
        djoin->children.push_back(std::move(dep));
        plan = std::move(djoin);
      }

      // Sec. 4.1: push duplicate elimination below later steps.
      if (options_.push_duplicate_elimination && step_ppd &&
          i + 1 < steps.size()) {
        OpPtr dedup = MakeOp(OpKind::kDupElim);
        dedup->attr = out;
        dedup->children.push_back(std::move(plan));
        plan = std::move(dedup);
      }
      current = out;
    }

    // Final duplicate elimination preserves the node-set semantics. When
    // no step can produce duplicates the output is already a set.
    if (any_ppd) {
      OpPtr dedup = MakeOp(OpKind::kDupElim);
      dedup->attr = current;
      dedup->children.push_back(std::move(plan));
      plan = std::move(dedup);
    }
    return NodeSetPlan{std::move(plan), std::move(current)};
  }

  /// Sec. 3.5: path expressions e/pi.
  StatusOr<NodeSetPlan> TranslatePathExpr(const Expr& e,
                                          const std::string& ctx_attr,
                                          bool inner) {
    NATIX_ASSIGN_OR_RETURN(NodeSetPlan base,
                           TranslateNodeSet(*e.children[0], ctx_attr, inner));
    return TranslateSteps(std::move(base.plan), std::move(base.attr), e.steps,
                          inner, /*had_root_map=*/true);
  }

  /// Sec. 3.4: filter expressions e[p1]...[ph].
  StatusOr<NodeSetPlan> TranslateFilterExpr(const Expr& e,
                                            const std::string& ctx_attr,
                                            bool inner) {
    NATIX_ASSIGN_OR_RETURN(NodeSetPlan base,
                           TranslateNodeSet(*e.children[0], ctx_attr, inner));
    bool positional = false;
    for (const PredicateInfo& info : e.predicate_info) {
      positional = positional || info.uses_position || info.uses_last;
    }
    OpPtr plan = std::move(base.plan);
    if (positional) {
      // Sec. 3.4.2: establish document order before counting.
      OpPtr sort = MakeOp(OpKind::kSort);
      sort->attr = base.attr;
      sort->children.push_back(std::move(plan));
      plan = std::move(sort);
    }
    // The whole input sequence is a single context: no reset boundary.
    NATIX_ASSIGN_OR_RETURN(
        plan, ApplyPredicateList(std::move(plan), e.predicates,
                                 e.predicate_info, base.attr,
                                 /*boundary=*/""));
    return NodeSetPlan{std::move(plan), std::move(base.attr)};
  }

  /// Sec. 3.1.3: unions.
  StatusOr<NodeSetPlan> TranslateUnion(const Expr& e,
                                       const std::string& ctx_attr,
                                       bool inner) {
    std::string out = NewAttr("c");
    OpPtr concat = MakeOp(OpKind::kConcat);
    for (const xpath::ExprPtr& branch : e.children) {
      NATIX_ASSIGN_OR_RETURN(NodeSetPlan sub,
                             TranslateNodeSet(*branch, ctx_attr, inner));
      // Align every branch's result attribute onto the common one.
      OpPtr map = MakeOp(OpKind::kMap);
      map->attr = out;
      map->scalar = AttrRef(sub.attr);
      map->children.push_back(std::move(sub.plan));
      concat->children.push_back(std::move(map));
    }
    OpPtr dedup = MakeOp(OpKind::kDupElim);
    dedup->attr = out;
    dedup->children.push_back(std::move(concat));
    return NodeSetPlan{std::move(dedup), std::move(out)};
  }

  /// Sec. 3.6.3: id().
  StatusOr<NodeSetPlan> TranslateId(const Expr& e,
                                    const std::string& ctx_attr,
                                    bool inner) {
    const Expr& arg = *e.children[0];
    std::string out = NewAttr("c");
    OpPtr deref = MakeOp(OpKind::kIdDeref);
    deref->attr = out;
    if (arg.type == ExprType::kNodeSet) {
      NATIX_ASSIGN_OR_RETURN(NodeSetPlan input,
                             TranslateNodeSet(arg, ctx_attr, inner));
      deref->ctx_attr = input.attr;
      deref->children.push_back(std::move(input.plan));
    } else {
      PosCtx pos;
      NATIX_ASSIGN_OR_RETURN(ScalarPtr scalar,
                             TranslateScalar(arg, ctx_attr, pos));
      deref->scalar = std::move(scalar);
      // The context attribute locates the document whose id index to use.
      deref->ctx_attr = ctx_attr;
      deref->children.push_back(MakeOp(OpKind::kSingletonScan));
    }
    // Two input nodes may carry the same id token: keep set semantics.
    OpPtr dedup = MakeOp(OpKind::kDupElim);
    dedup->attr = out;
    dedup->children.push_back(std::move(deref));
    return NodeSetPlan{std::move(dedup), std::move(out)};
  }

  // -- Predicates -----------------------------------------------------------

  StatusOr<OpPtr> ApplyPredicates(OpPtr plan, const Step& step,
                                  const std::string& out_attr,
                                  const std::string& boundary) {
    return ApplyPredicateList(std::move(plan), step.predicates,
                              step.predicate_info, out_attr, boundary);
  }

  /// Applies the predicate pipeline of Sec. 3.3 / 4.3 on top of `plan`.
  /// `out_attr` is the candidate node attribute (the predicates' context
  /// node); `boundary` is the input-context attribute whose change ends a
  /// context in the stacked translation ("" = each Open is one context).
  StatusOr<OpPtr> ApplyPredicateList(
      OpPtr plan, const std::vector<xpath::ExprPtr>& predicates,
      const std::vector<PredicateInfo>& info_list,
      const std::string& out_attr, const std::string& boundary) {
    NATIX_CHECK(predicates.size() == info_list.size());
    for (size_t k = 0; k < predicates.size(); ++k) {
      const Expr& predicate = *predicates[k];
      const PredicateInfo& info = info_list[k];

      PosCtx pos;
      if (info.uses_position || info.uses_last) {
        // chi_{cp := counter++}  (Sec. 3.3.3)
        pos.cp = NewAttr("cp");
        OpPtr counter = MakeOp(OpKind::kCounter);
        counter->attr = pos.cp;
        counter->ctx_attr = boundary;  // reset on context change (4.3.1)
        counter->children.push_back(std::move(plan));
        plan = std::move(counter);
      }
      if (info.uses_last) {
        // Tmp^cs / Tmp^cs_c  (Sec. 3.3.4 / 4.3.1)
        pos.cs = NewAttr("cs");
        OpPtr tmp = MakeOp(OpKind::kTmpCs);
        tmp->attr = pos.cs;
        tmp->ctx_attr = boundary;
        tmp->children.push_back(std::move(plan));
        plan = std::move(tmp);
      }

      // Split the predicate into conjuncts and order them cheap-first
      // (Sec. 4.3.2) when enabled.
      std::vector<const Expr*> conjuncts;
      FlattenConjuncts(predicate, &conjuncts);
      std::vector<const Expr*> ordered;
      if (options_.split_expensive_predicates && conjuncts.size() > 1) {
        for (const Expr* c : conjuncts) {
          if (!xpath::AnalyzePredicate(*c).expensive) ordered.push_back(c);
        }
        for (const Expr* c : conjuncts) {
          if (xpath::AnalyzePredicate(*c).expensive) ordered.push_back(c);
        }
      } else {
        ordered = conjuncts;
      }

      for (const Expr* conjunct : ordered) {
        NATIX_ASSIGN_OR_RETURN(ScalarPtr scalar,
                               TranslateScalar(*conjunct, out_attr, pos));
        bool expensive = options_.split_expensive_predicates &&
                         conjuncts.size() > 1 &&
                         xpath::AnalyzePredicate(*conjunct).expensive;
        if (expensive) {
          // sigma^mat: materialize the expensive value into an attribute
          // (chi^mat), then select on it (Sec. 4.3.2).
          std::string v = NewAttr("v");
          OpPtr map = MakeOp(OpKind::kMap);
          map->attr = v;
          map->materialize = true;
          map->scalar = std::move(scalar);
          map->children.push_back(std::move(plan));
          plan = std::move(map);
          OpPtr select = MakeOp(OpKind::kSelect);
          select->scalar = AttrRef(v);
          select->children.push_back(std::move(plan));
          plan = std::move(select);
        } else {
          OpPtr select = MakeOp(OpKind::kSelect);
          select->scalar = std::move(scalar);
          select->children.push_back(std::move(plan));
          plan = std::move(select);
        }
      }
    }
    return plan;
  }

  static void FlattenConjuncts(const Expr& e,
                               std::vector<const Expr*>* out) {
    if (e.kind == ExprKind::kBinary && e.op == BinaryOp::kAnd) {
      FlattenConjuncts(*e.children[0], out);
      FlattenConjuncts(*e.children[1], out);
      return;
    }
    out->push_back(&e);
  }

  // -- Scalar expressions ----------------------------------------------------

  /// Wraps a node-set expression into a nested aggregate scalar.
  StatusOr<ScalarPtr> NestedAgg(const Expr& node_set, AggKind agg,
                                const std::string& ctx_attr) {
    NATIX_ASSIGN_OR_RETURN(NodeSetPlan plan,
                           TranslateNodeSet(node_set, ctx_attr,
                                            /*inner=*/true));
    ScalarPtr s = MakeScalar(ScalarKind::kNested);
    s->agg = agg;
    s->input_attr = plan.attr;
    s->plan = std::move(plan.plan);
    return s;
  }

  StatusOr<ScalarPtr> TranslateScalar(const Expr& e,
                                      const std::string& ctx_attr,
                                      const PosCtx& pos) {
    switch (e.kind) {
      case ExprKind::kNumberLiteral: {
        ScalarPtr s = MakeScalar(ScalarKind::kNumberConst);
        s->number = e.number;
        return s;
      }
      case ExprKind::kStringLiteral: {
        ScalarPtr s = MakeScalar(ScalarKind::kStringConst);
        s->string_value = e.string_value;
        return s;
      }
      case ExprKind::kBooleanLiteral: {
        ScalarPtr s = MakeScalar(ScalarKind::kBoolConst);
        s->boolean = e.boolean;
        return s;
      }
      case ExprKind::kVariable: {
        ScalarPtr s = MakeScalar(ScalarKind::kVarRef);
        s->name = e.name;
        return s;
      }
      case ExprKind::kNegate: {
        NATIX_ASSIGN_OR_RETURN(ScalarPtr operand,
                               TranslateScalar(*e.children[0], ctx_attr, pos));
        ScalarPtr s = MakeScalar(ScalarKind::kNegate);
        s->children.push_back(std::move(operand));
        return s;
      }
      case ExprKind::kBinary:
        return TranslateBinary(e, ctx_attr, pos);
      case ExprKind::kFunctionCall:
        return TranslateCall(e, ctx_attr, pos);
      default:
        return Status::Internal("node-set expression in scalar context: " +
                                e.ToString());
    }
  }

  StatusOr<ScalarPtr> TranslateBinary(const Expr& e,
                                      const std::string& ctx_attr,
                                      const PosCtx& pos) {
    if (IsComparison(e.op)) {
      return TranslateComparison(e, ctx_attr, pos);
    }
    NATIX_ASSIGN_OR_RETURN(ScalarPtr lhs,
                           TranslateScalar(*e.children[0], ctx_attr, pos));
    NATIX_ASSIGN_OR_RETURN(ScalarPtr rhs,
                           TranslateScalar(*e.children[1], ctx_attr, pos));
    ScalarPtr s = MakeScalar(e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr
                                 ? ScalarKind::kLogical
                                 : ScalarKind::kArith);
    s->op = e.op;
    s->children.push_back(std::move(lhs));
    s->children.push_back(std::move(rhs));
    return s;
  }

  /// Sec. 3.6.2: comparisons, including the existential node-set cases.
  StatusOr<ScalarPtr> TranslateComparison(const Expr& e,
                                          const std::string& ctx_attr,
                                          const PosCtx& pos) {
    const Expr& lhs = *e.children[0];
    const Expr& rhs = *e.children[1];
    bool lhs_ns = lhs.type == ExprType::kNodeSet;
    bool rhs_ns = rhs.type == ExprType::kNodeSet;
    CompareOp op = ToCompareOp(e.op);

    if (!lhs_ns && !rhs_ns) {
      NATIX_ASSIGN_OR_RETURN(ScalarPtr a,
                             TranslateScalar(lhs, ctx_attr, pos));
      NATIX_ASSIGN_OR_RETURN(ScalarPtr b,
                             TranslateScalar(rhs, ctx_attr, pos));
      ScalarPtr s = MakeScalar(ScalarKind::kCompare);
      s->cmp = op;
      s->children.push_back(std::move(a));
      s->children.push_back(std::move(b));
      return s;
    }

    if (lhs_ns && rhs_ns) {
      if (op == CompareOp::kEq || op == CompareOp::kNe) {
        // exists(T[e1] semijoin_theta T[e2]).
        //
        // Note: for != the paper (Sec. 3.6.2) uses the anti-join; a
        // semi-join with a != condition implements the recommendation's
        // "exists a pair of unequal nodes" semantics, which differs on
        // inputs like {a} != {a,b}. We keep the spec semantics; see
        // DESIGN.md.
        NATIX_ASSIGN_OR_RETURN(NodeSetPlan left,
                               TranslateNodeSet(lhs, ctx_attr, true));
        NATIX_ASSIGN_OR_RETURN(NodeSetPlan right,
                               TranslateNodeSet(rhs, ctx_attr, true));
        OpPtr semi = MakeOp(OpKind::kSemiJoin);
        ScalarPtr pred = MakeScalar(ScalarKind::kCompare);
        pred->cmp = op;
        pred->children.push_back(AttrRef(left.attr));
        pred->children.push_back(AttrRef(right.attr));
        semi->scalar = std::move(pred);
        std::string left_attr = left.attr;
        semi->children.push_back(std::move(left.plan));
        semi->children.push_back(std::move(right.plan));
        ScalarPtr s = MakeScalar(ScalarKind::kNested);
        s->agg = AggKind::kExists;
        s->input_attr = left_attr;
        s->plan = std::move(semi);
        return s;
      }
      // Relational: exists x in e1 with x theta max(e2) (or min for >,>=;
      // Sec. 3.6.2).
      NATIX_ASSIGN_OR_RETURN(NodeSetPlan left,
                             TranslateNodeSet(lhs, ctx_attr, true));
      AggKind extremum = (op == CompareOp::kLt || op == CompareOp::kLe)
                             ? AggKind::kMax
                             : AggKind::kMin;
      NATIX_ASSIGN_OR_RETURN(NodeSetPlan right,
                             TranslateNodeSet(rhs, ctx_attr, true));
      ScalarPtr bound = MakeScalar(ScalarKind::kNested);
      bound->agg = extremum;
      bound->input_attr = right.attr;
      bound->plan = std::move(right.plan);
      // Evaluate the extremum once (map over the singleton scan) and feed
      // the left side through a d-join so the comparison runs per node.
      std::string m = NewAttr("v");
      OpPtr bound_map = MakeOp(OpKind::kMap);
      bound_map->attr = m;
      bound_map->scalar = std::move(bound);
      bound_map->children.push_back(MakeOp(OpKind::kSingletonScan));
      OpPtr djoin = MakeOp(OpKind::kDJoin);
      djoin->children.push_back(std::move(bound_map));
      std::string left_attr = left.attr;
      djoin->children.push_back(std::move(left.plan));
      OpPtr select = MakeOp(OpKind::kSelect);
      ScalarPtr cmp = MakeScalar(ScalarKind::kCompare);
      cmp->cmp = op;
      cmp->children.push_back(AttrRef(left_attr));
      cmp->children.push_back(AttrRef(m));
      select->scalar = std::move(cmp);
      select->children.push_back(std::move(djoin));
      ScalarPtr s = MakeScalar(ScalarKind::kNested);
      s->agg = AggKind::kExists;
      s->input_attr = left_attr;
      s->plan = std::move(select);
      return s;
    }

    // Mixed: node-set theta atomic (or mirrored).
    const Expr& ns = lhs_ns ? lhs : rhs;
    const Expr& atomic = lhs_ns ? rhs : lhs;
    CompareOp oriented = lhs_ns ? op : Mirror(op);

    if ((oriented == CompareOp::kEq || oriented == CompareOp::kNe) &&
        atomic.type == ExprType::kBoolean) {
      // ns = bool  <=>  boolean(ns) = bool.
      NATIX_ASSIGN_OR_RETURN(ScalarPtr exists,
                             NestedAgg(ns, AggKind::kExists, ctx_attr));
      NATIX_ASSIGN_OR_RETURN(ScalarPtr b,
                             TranslateScalar(atomic, ctx_attr, pos));
      ScalarPtr s = MakeScalar(ScalarKind::kCompare);
      s->cmp = oriented;
      s->children.push_back(std::move(exists));
      s->children.push_back(std::move(b));
      return s;
    }

    // exists(sigma_{node theta atomic}(T[ns])).
    NATIX_ASSIGN_OR_RETURN(NodeSetPlan plan,
                           TranslateNodeSet(ns, ctx_attr, true));
    NATIX_ASSIGN_OR_RETURN(ScalarPtr atom,
                           TranslateScalar(atomic, ctx_attr, pos));
    OpPtr select = MakeOp(OpKind::kSelect);
    ScalarPtr cmp = MakeScalar(ScalarKind::kCompare);
    cmp->cmp = oriented;
    cmp->children.push_back(AttrRef(plan.attr));
    cmp->children.push_back(std::move(atom));
    select->scalar = std::move(cmp);
    std::string attr = plan.attr;
    select->children.push_back(std::move(plan.plan));
    ScalarPtr s = MakeScalar(ScalarKind::kNested);
    s->agg = AggKind::kExists;
    s->input_attr = attr;
    s->plan = std::move(select);
    return s;
  }

  StatusOr<ScalarPtr> TranslateCall(const Expr& e,
                                    const std::string& ctx_attr,
                                    const PosCtx& pos) {
    auto fid = static_cast<FunctionId>(e.function_id);
    switch (fid) {
      case FunctionId::kPosition:
        return AttrRef(pos.cp);
      case FunctionId::kLast:
        return AttrRef(pos.cs);
      case FunctionId::kCount:
        return NestedAgg(*e.children[0], AggKind::kCount, ctx_attr);
      case FunctionId::kSum:
        return NestedAgg(*e.children[0], AggKind::kSum, ctx_attr);
      case FunctionId::kBoolean:
        if (e.children[0]->type == ExprType::kNodeSet) {
          // Sec. 3.3.2: conversion to boolean via the internal exists().
          return NestedAgg(*e.children[0], AggKind::kExists, ctx_attr);
        }
        break;
      case FunctionId::kString:
        if (e.children[0]->type == ExprType::kNodeSet) {
          return NestedAgg(*e.children[0], AggKind::kFirstString, ctx_attr);
        }
        break;
      case FunctionId::kNumber:
        if (e.children[0]->type == ExprType::kNodeSet) {
          NATIX_ASSIGN_OR_RETURN(
              ScalarPtr first,
              NestedAgg(*e.children[0], AggKind::kFirstString, ctx_attr));
          ScalarPtr s = MakeScalar(ScalarKind::kFunc);
          s->function = FunctionId::kNumber;
          s->children.push_back(std::move(first));
          return s;
        }
        break;
      case FunctionId::kName:
        return NestedAgg(*e.children[0], AggKind::kFirstName, ctx_attr);
      case FunctionId::kLocalName:
        return NestedAgg(*e.children[0], AggKind::kFirstLocalName, ctx_attr);
      case FunctionId::kNamespaceUri: {
        // No namespace processing: always the empty string.
        ScalarPtr s = MakeScalar(ScalarKind::kStringConst);
        return s;
      }
      case FunctionId::kLang: {
        // lang(s) tests the context node's xml:lang; pass the context
        // node as a hidden second operand.
        NATIX_ASSIGN_OR_RETURN(ScalarPtr arg,
                               TranslateScalar(*e.children[0], ctx_attr, pos));
        ScalarPtr s = MakeScalar(ScalarKind::kFunc);
        s->function = FunctionId::kLang;
        s->children.push_back(std::move(arg));
        s->children.push_back(AttrRef(ctx_attr));
        return s;
      }
      case FunctionId::kId:
        return Status::Internal(
            "id() in scalar context should have been wrapped by a "
            "conversion");
      default:
        break;
    }
    // Simple functions: translate arguments and keep the call (Sec. 3.6.1).
    ScalarPtr s = MakeScalar(ScalarKind::kFunc);
    s->function = fid;
    for (const xpath::ExprPtr& arg : e.children) {
      NATIX_ASSIGN_OR_RETURN(ScalarPtr a,
                             TranslateScalar(*arg, ctx_attr, pos));
      s->children.push_back(std::move(a));
    }
    return s;
  }

  TranslatorOptions options_;
  int counter_ = 1;
};

}  // namespace

StatusOr<TranslationResult> Translate(const xpath::Expr& root,
                                      const TranslatorOptions& options) {
  obs::ScopedSpan span("compile/translate");
  TranslatorImpl impl(options);
  NATIX_ASSIGN_OR_RETURN(TranslationResult result, impl.Run(root));
  result.optimize_nvm = options.optimize_nvm;
  // Layer-1 verification directly after translation, so a translator bug
  // is reported before rewrites can obscure it.
  if (analysis::VerificationEnabled()) {
    NATIX_RETURN_IF_ERROR(analysis::VerifyTranslation(result));
  }
  if (options.simplify_plan) {
    // The checked simplifier re-verifies after every rule application
    // (when verification is enabled) and names the offending rule.
    NATIX_RETURN_IF_ERROR(algebra::SimplifyPlanChecked(
                              &result.plan, &result.rewrites,
                              options.limit_pushdown)
                              .status());
  }
  if (options.result_limit > 0 && result.type == ExprType::kNodeSet) {
    // Paginated serving: cap the result at the first result_limit nodes
    // in document order. A provably doc-ordered result stream is capped
    // in place (the pipeline closes after the k-th binding); otherwise
    // an in-plan sort establishes the order below the cap, so the bound
    // is exact either way.
    analysis::PlanProperties props =
        analysis::InferPlanProperties(*result.plan);
    analysis::AttrProperties out = props.Lookup(result.result_attr);
    if (out.order != analysis::OrderState::kDocOrdered) {
      OpPtr sort = MakeOp(OpKind::kSort);
      sort->attr = result.result_attr;
      sort->children.push_back(std::move(result.plan));
      result.plan = std::move(sort);
    }
    OpPtr lim = MakeOp(OpKind::kLimit);
    lim->limit = options.result_limit;
    lim->children.push_back(std::move(result.plan));
    result.plan = std::move(lim);
    result.rewrites.push_back(algebra::RewriteEvent{
        "limit:api-result-limit", "Limit[" +
            std::to_string(options.result_limit) + "]",
        out.order == analysis::OrderState::kDocOrdered
            ? std::string("result stream provably doc-ordered")
            : std::string("in-plan sort inserted below the cap")});
    if (analysis::VerificationEnabled()) {
      NATIX_RETURN_IF_ERROR(analysis::VerifyTranslation(result));
    }
  }
  return result;
}

}  // namespace natix::translate
