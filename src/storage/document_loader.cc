#include "storage/document_loader.h"

#include <vector>

#include "xml/reader.h"

namespace natix::storage {

namespace {

/// Tracks one open element while loading.
struct OpenElement {
  NodeId id;
  NodeId last_child = kInvalidNodeId;
};

class Loader {
 public:
  Loader(NodeStore* store, std::string_view name)
      : store_(store), name_(name) {}

  StatusOr<DocumentInfo> Run(std::string_view xml_text) {
    // Document node first.
    NodeRecord doc_record;
    doc_record.kind = StoredNodeKind::kDocument;
    doc_record.order = store_->NextOrderKey();
    NATIX_ASSIGN_OR_RETURN(NodeId root, store_->AppendNode(doc_record));
    ++node_count_;
    stack_.push_back(OpenElement{root});

    xml::Reader reader(xml_text);
    while (true) {
      xml::Reader::Event event;
      NATIX_RETURN_IF_ERROR(reader.Next(&event));
      switch (event.kind) {
        case xml::EventKind::kEndDocument: {
          NATIX_RETURN_IF_ERROR(FlushText());
          DocumentInfo info;
          info.name = name_;
          info.root = root;
          info.node_count = node_count_;
          NATIX_RETURN_IF_ERROR(store_->AddDocument(info));
          return info;
        }
        case xml::EventKind::kStartElement:
          NATIX_RETURN_IF_ERROR(FlushText());
          NATIX_RETURN_IF_ERROR(StartElement(event));
          break;
        case xml::EventKind::kEndElement:
          NATIX_RETURN_IF_ERROR(FlushText());
          stack_.pop_back();
          break;
        case xml::EventKind::kText:
          // Merge adjacent runs (text + CDATA) into one stored node.
          pending_text_ += event.text;
          break;
        case xml::EventKind::kComment:
          NATIX_RETURN_IF_ERROR(FlushText());
          NATIX_RETURN_IF_ERROR(
              AppendLeaf(StoredNodeKind::kComment, kInvalidNameId,
                         event.text));
          break;
        case xml::EventKind::kProcessingInstruction:
          NATIX_RETURN_IF_ERROR(FlushText());
          NATIX_RETURN_IF_ERROR(
              AppendLeaf(StoredNodeKind::kProcessingInstruction,
                         store_->names()->Intern(event.name), event.text));
          break;
      }
    }
  }

 private:
  /// Links `child` as the next child of the innermost open element.
  Status LinkChild(NodeId child) {
    OpenElement& parent = stack_.back();
    if (!parent.last_child.valid()) {
      NATIX_RETURN_IF_ERROR(store_->SetLink(
          parent.id, NodeStore::LinkField::kFirstChild, child));
    } else {
      NATIX_RETURN_IF_ERROR(store_->SetLink(
          parent.last_child, NodeStore::LinkField::kNextSibling, child));
      NATIX_RETURN_IF_ERROR(store_->SetLink(
          child, NodeStore::LinkField::kPrevSibling, parent.last_child));
    }
    parent.last_child = child;
    return store_->SetLink(parent.id, NodeStore::LinkField::kLastChild,
                           child);
  }

  Status AppendLeaf(StoredNodeKind kind, uint32_t name_id,
                    const std::string& content) {
    NodeRecord record;
    record.kind = kind;
    record.name_id = name_id;
    record.order = store_->NextOrderKey();
    record.parent = stack_.back().id;
    record.inline_text = content;
    NATIX_ASSIGN_OR_RETURN(NodeId id, store_->AppendNode(record));
    ++node_count_;
    return LinkChild(id);
  }

  Status FlushText() {
    if (pending_text_.empty()) return Status::OK();
    std::string text;
    text.swap(pending_text_);
    return AppendLeaf(StoredNodeKind::kText, kInvalidNameId, text);
  }

  Status StartElement(const xml::Reader::Event& event) {
    NodeRecord record;
    record.kind = StoredNodeKind::kElement;
    record.name_id = store_->names()->Intern(event.name);
    record.order = store_->NextOrderKey();
    record.parent = stack_.back().id;
    NATIX_ASSIGN_OR_RETURN(NodeId element, store_->AppendNode(record));
    ++node_count_;
    NATIX_RETURN_IF_ERROR(LinkChild(element));

    // Attribute chain, linked through next_sibling among attributes.
    NodeId previous_attr = kInvalidNodeId;
    for (const xml::Attribute& attr : event.attributes) {
      NodeRecord attr_record;
      attr_record.kind = StoredNodeKind::kAttribute;
      attr_record.name_id = store_->names()->Intern(attr.name);
      attr_record.order = store_->NextOrderKey();
      attr_record.parent = element;
      attr_record.inline_text = attr.value;
      NATIX_ASSIGN_OR_RETURN(NodeId attr_id, store_->AppendNode(attr_record));
      ++node_count_;
      if (!previous_attr.valid()) {
        NATIX_RETURN_IF_ERROR(store_->SetLink(
            element, NodeStore::LinkField::kFirstAttr, attr_id));
      } else {
        NATIX_RETURN_IF_ERROR(store_->SetLink(
            previous_attr, NodeStore::LinkField::kNextSibling, attr_id));
      }
      previous_attr = attr_id;
    }
    stack_.push_back(OpenElement{element});
    return Status::OK();
  }

  NodeStore* store_;
  std::string name_;
  std::vector<OpenElement> stack_;
  std::string pending_text_;
  uint64_t node_count_ = 0;
};

}  // namespace

StatusOr<DocumentInfo> LoadDocument(NodeStore* store,
                                    std::string_view document_name,
                                    std::string_view xml_text) {
  Loader loader(store, document_name);
  return loader.Run(xml_text);
}

}  // namespace natix::storage
