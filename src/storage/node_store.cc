#include "storage/node_store.h"

#include <cstring>

#include "base/logging.h"
#include "storage/slotted_page.h"

namespace natix::storage {

namespace {

constexpr uint64_t kMagic = 0x3154535849544144ull;  // "NATIXST1" (le)

// Node record layout (fixed part, offsets in bytes):
constexpr size_t kOffKind = 0;
constexpr size_t kOffFlags = 1;
constexpr size_t kOffNameId = 2;
constexpr size_t kOffOrder = 6;
constexpr size_t kOffParent = 14;
constexpr size_t kOffFirstChild = 20;
constexpr size_t kOffLastChild = 26;
constexpr size_t kOffNextSibling = 32;
constexpr size_t kOffPrevSibling = 38;
constexpr size_t kOffFirstAttr = 44;
constexpr size_t kOffContentLen = 50;
constexpr size_t kFixedSize = 54;

constexpr uint8_t kFlagOverflow = 0x1;

/// Content at most this long is stored inline in the node record, keeping
/// several nodes per page; longer content moves to overflow chunks.
constexpr size_t kInlineContentLimit = 4000;

/// Overflow chunk record: [6-byte next chunk id][payload].
constexpr size_t kChunkHeaderSize = 6;
constexpr size_t kChunkPayloadMax = SlottedPage::kMaxRecordSize -
                                    kChunkHeaderSize;

void EncodeLink(uint8_t* p, NodeId id) {
  std::memcpy(p, &id.page, 4);
  std::memcpy(p + 4, &id.slot, 2);
}

NodeId DecodeLink(const uint8_t* p) {
  NodeId id;
  std::memcpy(&id.page, p, 4);
  std::memcpy(&id.slot, p + 4, 2);
  return id;
}

size_t LinkOffset(NodeStore::LinkField field) {
  switch (field) {
    case NodeStore::LinkField::kParent:
      return kOffParent;
    case NodeStore::LinkField::kFirstChild:
      return kOffFirstChild;
    case NodeStore::LinkField::kLastChild:
      return kOffLastChild;
    case NodeStore::LinkField::kNextSibling:
      return kOffNextSibling;
    case NodeStore::LinkField::kPrevSibling:
      return kOffPrevSibling;
    case NodeStore::LinkField::kFirstAttr:
      return kOffFirstAttr;
  }
  NATIX_CHECK(false);
  return 0;
}

void AppendU32(std::string* blob, uint32_t v) {
  blob->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* blob, uint64_t v) {
  blob->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::string_view blob, size_t* pos, uint32_t* v) {
  if (blob.size() - *pos < sizeof(*v)) return false;
  std::memcpy(v, blob.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}
bool ReadU64(std::string_view blob, size_t* pos, uint64_t* v) {
  if (blob.size() - *pos < sizeof(*v)) return false;
  std::memcpy(v, blob.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

void DecodeHeader(const uint8_t* p, NodeHeader* header) {
  header->kind = static_cast<StoredNodeKind>(p[kOffKind]);
  std::memcpy(&header->name_id, p + kOffNameId, 4);
  std::memcpy(&header->order, p + kOffOrder, 8);
  header->parent = DecodeLink(p + kOffParent);
  header->first_child = DecodeLink(p + kOffFirstChild);
  header->last_child = DecodeLink(p + kOffLastChild);
  header->next_sibling = DecodeLink(p + kOffNextSibling);
  header->prev_sibling = DecodeLink(p + kOffPrevSibling);
  header->first_attr = DecodeLink(p + kOffFirstAttr);
}

}  // namespace

NodeStore::NodeStore(std::unique_ptr<PagedFile> file, const Options& options)
    : file_(std::move(file)),
      buffer_(std::make_unique<BufferManager>(file_.get(),
                                              options.buffer_pages,
                                              options.buffer_shards)) {}

StatusOr<std::unique_ptr<NodeStore>> NodeStore::Create(
    const std::string& path, const Options& options) {
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<PagedFile> file,
                         PagedFile::Open(path, /*create=*/true));
  std::unique_ptr<NodeStore> store(new NodeStore(std::move(file), options));
  NATIX_RETURN_IF_ERROR(store->InitializeNew());
  return store;
}

StatusOr<std::unique_ptr<NodeStore>> NodeStore::CreateTemp(
    const Options& options) {
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<PagedFile> file,
                         PagedFile::OpenTemp());
  std::unique_ptr<NodeStore> store(new NodeStore(std::move(file), options));
  NATIX_RETURN_IF_ERROR(store->InitializeNew());
  return store;
}

StatusOr<std::unique_ptr<NodeStore>> NodeStore::Open(const std::string& path,
                                                     const Options& options) {
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<PagedFile> file,
                         PagedFile::Open(path, /*create=*/false));
  std::unique_ptr<NodeStore> store(new NodeStore(std::move(file), options));
  NATIX_RETURN_IF_ERROR(store->LoadExisting());
  return store;
}

Status NodeStore::InitializeNew() {
  NATIX_ASSIGN_OR_RETURN(PageHandle superblock, buffer_->NewPage());
  if (superblock.page_id() != 0) {
    return Status::Internal("superblock must be page 0");
  }
  uint8_t* data = superblock.mutable_data();
  std::memcpy(data, &kMagic, sizeof(kMagic));
  PageId invalid = kInvalidPage;
  std::memcpy(data + 8, &invalid, sizeof(invalid));
  uint64_t zero = 0;
  std::memcpy(data + 12, &zero, sizeof(zero));
  return Status::OK();
}

Status NodeStore::LoadExisting() {
  NATIX_ASSIGN_OR_RETURN(PageHandle superblock, buffer_->FixPage(0));
  const uint8_t* data = superblock.data();
  uint64_t magic;
  std::memcpy(&magic, data, sizeof(magic));
  if (magic != kMagic) return Status::Corruption("bad store magic");
  PageId meta_head;
  std::memcpy(&meta_head, data + 8, sizeof(meta_head));
  std::memcpy(&next_order_key_, data + 12, sizeof(next_order_key_));
  if (meta_head == kInvalidPage) return Status::OK();

  NATIX_ASSIGN_OR_RETURN(std::string blob, ReadBlobChain(meta_head));
  size_t consumed = names_.ParseFrom(blob);
  if (consumed == 0 && !blob.empty()) {
    return Status::Corruption("bad name dictionary");
  }
  std::string_view rest(blob);
  size_t pos = consumed;
  uint32_t doc_count;
  if (!ReadU32(rest, &pos, &doc_count)) {
    return Status::Corruption("bad catalog header");
  }
  documents_.clear();
  for (uint32_t i = 0; i < doc_count; ++i) {
    DocumentInfo info;
    uint32_t name_len;
    if (!ReadU32(rest, &pos, &name_len) || rest.size() - pos < name_len) {
      return Status::Corruption("bad catalog entry");
    }
    info.name.assign(rest.substr(pos, name_len));
    pos += name_len;
    uint32_t root_page;
    if (!ReadU32(rest, &pos, &root_page)) {
      return Status::Corruption("bad catalog entry");
    }
    uint32_t root_slot;
    if (!ReadU32(rest, &pos, &root_slot)) {
      return Status::Corruption("bad catalog entry");
    }
    info.root = NodeId{root_page, static_cast<uint16_t>(root_slot)};
    if (!ReadU64(rest, &pos, &info.node_count)) {
      return Status::Corruption("bad catalog entry");
    }
    documents_.push_back(std::move(info));
  }
  return Status::OK();
}

StatusOr<PageId> NodeStore::WriteBlobChain(const std::string& blob) {
  // Each chain page: [u32 next][u32 len][bytes].
  constexpr size_t kChainPayload = kPageSize - 8;
  PageId head = kInvalidPage;
  PageId prev = kInvalidPage;
  size_t offset = 0;
  do {
    size_t len = std::min(kChainPayload, blob.size() - offset);
    NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->NewPage());
    uint8_t* data = page.mutable_data();
    PageId invalid = kInvalidPage;
    std::memcpy(data, &invalid, 4);
    uint32_t len32 = static_cast<uint32_t>(len);
    std::memcpy(data + 4, &len32, 4);
    std::memcpy(data + 8, blob.data() + offset, len);
    if (head == kInvalidPage) head = page.page_id();
    if (prev != kInvalidPage) {
      NATIX_ASSIGN_OR_RETURN(PageHandle prev_page, buffer_->FixPage(prev));
      PageId next = page.page_id();
      std::memcpy(prev_page.mutable_data(), &next, 4);
    }
    prev = page.page_id();
    offset += len;
  } while (offset < blob.size());
  return head;
}

StatusOr<std::string> NodeStore::ReadBlobChain(PageId head) const {
  std::string blob;
  PageId current = head;
  while (current != kInvalidPage) {
    NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->FixPage(current));
    const uint8_t* data = page.data();
    PageId next;
    std::memcpy(&next, data, 4);
    uint32_t len;
    std::memcpy(&len, data + 4, 4);
    if (len > kPageSize - 8) return Status::Corruption("bad chain page");
    blob.append(reinterpret_cast<const char*>(data + 8), len);
    current = next;
  }
  return blob;
}

Status NodeStore::Flush() {
  std::string blob;
  names_.AppendTo(&blob);
  AppendU32(&blob, static_cast<uint32_t>(documents_.size()));
  for (const DocumentInfo& info : documents_) {
    AppendU32(&blob, static_cast<uint32_t>(info.name.size()));
    blob += info.name;
    AppendU32(&blob, info.root.page);
    AppendU32(&blob, info.root.slot);
    AppendU64(&blob, info.node_count);
  }
  // A fresh chain is written on every flush; superseded chains are not
  // reclaimed (load-mostly store — reclamation is out of scope here).
  NATIX_ASSIGN_OR_RETURN(PageId head, WriteBlobChain(blob));
  {
    NATIX_ASSIGN_OR_RETURN(PageHandle superblock, buffer_->FixPage(0));
    uint8_t* data = superblock.mutable_data();
    std::memcpy(data + 8, &head, sizeof(head));
    std::memcpy(data + 12, &next_order_key_, sizeof(next_order_key_));
  }
  NATIX_RETURN_IF_ERROR(buffer_->FlushAll());
  return file_->Sync();
}

StatusOr<NodeId> NodeStore::WriteOverflow(std::string_view content) {
  // Write chunks back-to-front so each chunk can link to the next.
  NodeId next = kInvalidNodeId;
  size_t full_chunks = content.size() / kChunkPayloadMax;
  size_t first_len = content.size() - full_chunks * kChunkPayloadMax;
  std::vector<std::string_view> chunks;
  size_t off = 0;
  if (first_len > 0) {
    chunks.push_back(content.substr(0, first_len));
    off = first_len;
  }
  for (size_t i = 0; i < full_chunks; ++i) {
    chunks.push_back(content.substr(off, kChunkPayloadMax));
    off += kChunkPayloadMax;
  }
  std::string buf;
  for (size_t i = chunks.size(); i-- > 0;) {
    buf.resize(kChunkHeaderSize + chunks[i].size());
    EncodeLink(reinterpret_cast<uint8_t*>(buf.data()), next);
    std::memcpy(buf.data() + kChunkHeaderSize, chunks[i].data(),
                chunks[i].size());
    // Overflow chunks get their own pages (they are near page-sized).
    NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->NewPage());
    SlottedPage::Init(page.mutable_data());
    uint16_t slot = SlottedPage::Insert(page.mutable_data(), buf.data(),
                                        static_cast<uint16_t>(buf.size()));
    next = NodeId{page.page_id(), slot};
  }
  return next;
}

StatusOr<NodeId> NodeStore::AppendNode(const NodeRecord& record) {
  bool overflow = record.inline_text.size() > kInlineContentLimit;
  std::string_view content = record.inline_text;

  NodeId overflow_head = kInvalidNodeId;
  if (overflow) {
    NATIX_ASSIGN_OR_RETURN(overflow_head, WriteOverflow(content));
  }

  size_t size = kFixedSize + (overflow ? kChunkHeaderSize : content.size());
  std::string buf(size, '\0');
  uint8_t* p = reinterpret_cast<uint8_t*>(buf.data());
  p[kOffKind] = static_cast<uint8_t>(record.kind);
  p[kOffFlags] = overflow ? kFlagOverflow : 0;
  std::memcpy(p + kOffNameId, &record.name_id, 4);
  std::memcpy(p + kOffOrder, &record.order, 8);
  EncodeLink(p + kOffParent, record.parent);
  EncodeLink(p + kOffFirstChild, record.first_child);
  EncodeLink(p + kOffLastChild, record.last_child);
  EncodeLink(p + kOffNextSibling, record.next_sibling);
  EncodeLink(p + kOffPrevSibling, record.prev_sibling);
  EncodeLink(p + kOffFirstAttr, record.first_attr);
  uint32_t content_len = static_cast<uint32_t>(content.size());
  std::memcpy(p + kOffContentLen, &content_len, 4);
  if (overflow) {
    EncodeLink(p + kFixedSize, overflow_head);
  } else {
    std::memcpy(p + kFixedSize, content.data(), content.size());
  }

  // Find a page with room, continuing on the current fill page.
  if (fill_page_ != kInvalidPage) {
    NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->FixPage(fill_page_));
    if (SlottedPage::HasRoomFor(page.data(), size)) {
      uint16_t slot = SlottedPage::Insert(page.mutable_data(), buf.data(),
                                          static_cast<uint16_t>(size));
      return NodeId{fill_page_, slot};
    }
  }
  NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->NewPage());
  SlottedPage::Init(page.mutable_data());
  fill_page_ = page.page_id();
  uint16_t slot = SlottedPage::Insert(page.mutable_data(), buf.data(),
                                      static_cast<uint16_t>(size));
  return NodeId{fill_page_, slot};
}

Status NodeStore::SetLink(NodeId node, LinkField field, NodeId target) {
  NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->FixPage(node.page));
  uint8_t* record = SlottedPage::MutableRecord(page.mutable_data(), node.slot);
  EncodeLink(record + LinkOffset(field), target);
  return Status::OK();
}

Status NodeStore::ReadNode(NodeId node, NodeRecord* record) const {
  if (!node.valid()) return Status::InvalidArgument("invalid node id");
  NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->FixPage(node.page));
  auto [p, size] = SlottedPage::Read(page.data(), node.slot);
  if (size < kFixedSize) return Status::Corruption("short node record");
  record->kind = static_cast<StoredNodeKind>(p[kOffKind]);
  bool overflow = (p[kOffFlags] & kFlagOverflow) != 0;
  record->text_overflow = overflow;
  std::memcpy(&record->name_id, p + kOffNameId, 4);
  std::memcpy(&record->order, p + kOffOrder, 8);
  record->parent = DecodeLink(p + kOffParent);
  record->first_child = DecodeLink(p + kOffFirstChild);
  record->last_child = DecodeLink(p + kOffLastChild);
  record->next_sibling = DecodeLink(p + kOffNextSibling);
  record->prev_sibling = DecodeLink(p + kOffPrevSibling);
  record->first_attr = DecodeLink(p + kOffFirstAttr);
  uint32_t content_len;
  std::memcpy(&content_len, p + kOffContentLen, 4);
  record->inline_text.clear();
  record->overflow_head = kInvalidNodeId;
  record->overflow_length = 0;
  if (overflow) {
    record->overflow_head = DecodeLink(p + kFixedSize);
    record->overflow_length = content_len;
  } else {
    record->inline_text.assign(reinterpret_cast<const char*>(p + kFixedSize),
                               content_len);
  }
  return Status::OK();
}

StatusOr<std::string> NodeStore::ReadContent(NodeId node) const {
  NodeRecord record;
  NATIX_RETURN_IF_ERROR(ReadNode(node, &record));
  if (!record.text_overflow) return std::move(record.inline_text);
  std::string out;
  out.reserve(record.overflow_length);
  NodeId chunk = record.overflow_head;
  while (chunk.valid()) {
    NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->FixPage(chunk.page));
    auto [p, size] = SlottedPage::Read(page.data(), chunk.slot);
    if (size < kChunkHeaderSize) return Status::Corruption("short chunk");
    NodeId next = DecodeLink(p);
    out.append(reinterpret_cast<const char*>(p + kChunkHeaderSize),
               size - kChunkHeaderSize);
    chunk = next;
  }
  return out;
}

StatusOr<std::string> NodeStore::StringValue(NodeId node) const {
  NodeRecord record;
  NATIX_RETURN_IF_ERROR(ReadNode(node, &record));
  if (record.kind != StoredNodeKind::kElement &&
      record.kind != StoredNodeKind::kDocument) {
    return ReadContent(node);
  }
  // Concatenate descendant text nodes via an explicit traversal.
  std::string out;
  NodeId current = record.first_child;
  std::vector<NodeId> stack;
  while (current.valid() || !stack.empty()) {
    if (!current.valid()) {
      current = stack.back();
      stack.pop_back();
      continue;
    }
    NodeRecord r;
    NATIX_RETURN_IF_ERROR(ReadNode(current, &r));
    if (r.kind == StoredNodeKind::kText) {
      if (r.text_overflow) {
        NATIX_ASSIGN_OR_RETURN(std::string chunked, ReadContent(current));
        out += chunked;
      } else {
        out += r.inline_text;
      }
    }
    if (r.kind == StoredNodeKind::kElement && r.first_child.valid()) {
      if (r.next_sibling.valid()) stack.push_back(r.next_sibling);
      current = r.first_child;
    } else {
      current = r.next_sibling;
    }
  }
  return out;
}

Status NodeStore::ReadHeader(NodeId node, NodeHeader* header) const {
  if (!node.valid()) return Status::InvalidArgument("invalid node id");
  NATIX_ASSIGN_OR_RETURN(PageHandle page, buffer_->FixPage(node.page));
  auto [p, size] = SlottedPage::Read(page.data(), node.slot);
  if (size < kFixedSize) return Status::Corruption("short node record");
  DecodeHeader(p, header);
  return Status::OK();
}

Status NodeAccessor::ReadHeader(NodeId node, NodeHeader* header) {
  if (!node.valid()) return Status::InvalidArgument("invalid node id");
  if (!cached_.valid() || cached_.page_id() != node.page) {
    NATIX_ASSIGN_OR_RETURN(
        cached_, store_->buffer_manager_for_accessor()->FixPage(node.page));
  }
  auto [p, size] = SlottedPage::Read(cached_.data(), node.slot);
  if (size < kFixedSize) return Status::Corruption("short node record");
  DecodeHeader(p, header);
  return Status::OK();
}

Status NodeStore::AddDocument(const DocumentInfo& info) {
  for (const DocumentInfo& existing : documents_) {
    if (existing.name == info.name) {
      return Status::InvalidArgument("document '" + info.name +
                                     "' already exists");
    }
  }
  documents_.push_back(info);
  return Status::OK();
}

StatusOr<DocumentInfo> NodeStore::FindDocument(std::string_view name) const {
  for (const DocumentInfo& info : documents_) {
    if (info.name == name) return info;
  }
  return Status::NotFound("document '" + std::string(name) + "' not found");
}

}  // namespace natix::storage
