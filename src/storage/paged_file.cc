#include "storage/paged_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace natix::storage {

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path,
                                                     bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat failed: " + std::string(std::strerror(errno)));
  }
  if (st.st_size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("file size of '" + path +
                              "' is not a multiple of the page size");
  }
  uint32_t pages = static_cast<uint32_t>(st.st_size / kPageSize);
  return std::unique_ptr<PagedFile>(new PagedFile(fd, pages, path));
}

StatusOr<std::unique_ptr<PagedFile>> PagedFile::OpenTemp() {
  const char* dir = std::getenv("TMPDIR");
  std::string tmpl = std::string(dir != nullptr ? dir : "/tmp") +
                     "/natix-store-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  int fd = ::mkstemp(buf.data());
  if (fd < 0) {
    return Status::IOError("mkstemp failed: " +
                           std::string(std::strerror(errno)));
  }
  // Unlink immediately; the fd keeps the file alive until close.
  ::unlink(buf.data());
  return std::unique_ptr<PagedFile>(new PagedFile(fd, 0, buf.data()));
}

StatusOr<PageId> PagedFile::AllocatePage() {
  static const char kZeros[kPageSize] = {};
  PageId id = page_count_;
  off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t written = ::pwrite(fd_, kZeros, kPageSize, offset);
  if (written != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short write while allocating page");
  }
  ++page_count_;
  return id;
}

Status PagedFile::ReadPage(PageId id, void* buffer) const {
  if (id >= page_count_) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is out of range");
  }
  off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pread(fd_, buffer, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short read of page " + std::to_string(id));
  }
  return Status::OK();
}

Status PagedFile::WritePage(PageId id, const void* buffer) {
  if (id >= page_count_) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is out of range");
  }
  off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pwrite(fd_, buffer, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short write of page " + std::to_string(id));
  }
  return Status::OK();
}

Status PagedFile::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace natix::storage
