#ifndef NATIX_STORAGE_NODE_STORE_H_
#define NATIX_STORAGE_NODE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "storage/buffer_manager.h"
#include "storage/name_dictionary.h"
#include "storage/paged_file.h"

namespace natix::storage {

/// Stable identifier of a stored node: (page, slot). Never changes while
/// the document exists (records are not relocated).
struct NodeId {
  PageId page = kInvalidPage;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPage; }
  friend bool operator==(const NodeId&, const NodeId&) = default;

  /// Packs into a single integer for hashing and register storage.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static NodeId Unpack(uint64_t v) {
    return NodeId{static_cast<PageId>(v >> 16),
                  static_cast<uint16_t>(v & 0xFFFF)};
  }
};

inline constexpr NodeId kInvalidNodeId{};

/// Node kinds stored on pages. Matches the XPath 1.0 data model.
enum class StoredNodeKind : uint8_t {
  kDocument = 0,
  kElement = 1,
  kAttribute = 2,
  kText = 3,
  kComment = 4,
  kProcessingInstruction = 5
};

/// The navigation header of a stored node: everything the axis cursors
/// need, without touching the (possibly large) content bytes.
struct NodeHeader {
  StoredNodeKind kind = StoredNodeKind::kDocument;
  uint32_t name_id = kInvalidNameId;
  uint64_t order = 0;
  NodeId parent;
  NodeId first_child;
  NodeId last_child;
  NodeId next_sibling;
  NodeId prev_sibling;
  NodeId first_attr;
};

/// Decoded image of a stored node record.
struct NodeRecord {
  StoredNodeKind kind = StoredNodeKind::kDocument;
  /// Name dictionary id for elements, attributes and PI targets;
  /// kInvalidNameId otherwise.
  uint32_t name_id = kInvalidNameId;
  /// Document-order key, unique across all documents of one store.
  uint64_t order = 0;
  NodeId parent;
  NodeId first_child;
  /// Last child, maintained so reverse-document-order axes (preceding,
  /// preceding-sibling via deepest-last descent) run in O(1) per step.
  NodeId last_child;
  NodeId next_sibling;
  NodeId prev_sibling;
  /// Head of the attribute chain (elements only; attributes are linked
  /// through next_sibling among themselves).
  NodeId first_attr;
  /// True when the content lives in an overflow chunk chain.
  bool text_overflow = false;
  /// Inline content (attribute value, text, comment, PI data) — filled
  /// only when !text_overflow; otherwise use NodeStore::ReadContent.
  std::string inline_text;
  /// Overflow chain head + total length when text_overflow.
  NodeId overflow_head;
  uint32_t overflow_length = 0;
};

/// A document registered in the store catalog.
struct DocumentInfo {
  std::string name;
  NodeId root;          // the document node
  uint64_t node_count = 0;
};

/// The persistent XML node store: slotted node pages behind a buffer
/// manager, a name dictionary, and a document catalog — the reimplementation
/// of the Natix storage layer the paper's physical algebra navigates
/// directly (Sec. 5.2.2).
class NodeStore {
 public:
  struct Options {
    /// Buffer pool size in frames (pages).
    size_t buffer_pages = 4096;
    /// Number of buffer-pool stripes (each with its own mutex and LRU).
    /// 1 reproduces the classic single-lock pool; concurrent read-only
    /// workloads want one stripe per expected thread or so. Must not
    /// exceed buffer_pages.
    size_t buffer_shards = 1;
  };

  /// Creates a new store at `path` (truncating any existing file).
  static StatusOr<std::unique_ptr<NodeStore>> Create(const std::string& path,
                                                     const Options& options);
  /// Creates an anonymous scratch store (tests/benchmarks/examples).
  static StatusOr<std::unique_ptr<NodeStore>> CreateTemp(
      const Options& options);
  /// Opens an existing store.
  static StatusOr<std::unique_ptr<NodeStore>> Open(const std::string& path,
                                                   const Options& options);

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  // -- Node construction (used by DocumentLoader) ------------------------

  /// Appends a node record and returns its id. Links may be invalid and
  /// patched later through the SetLink calls.
  StatusOr<NodeId> AppendNode(const NodeRecord& record);

  enum class LinkField {
    kParent,
    kFirstChild,
    kLastChild,
    kNextSibling,
    kPrevSibling,
    kFirstAttr
  };
  /// Patches one link field of an existing record in place.
  Status SetLink(NodeId node, LinkField field, NodeId target);

  /// Next document-order key (monotone across the whole store).
  uint64_t NextOrderKey() { return next_order_key_++; }

  // -- Node access --------------------------------------------------------

  /// Decodes the record of `node`.
  Status ReadNode(NodeId node, NodeRecord* record) const;

  /// Decodes only the navigation header (no content copy).
  Status ReadHeader(NodeId node, NodeHeader* header) const;

  /// Returns the node's content (attribute value / text / comment / PI
  /// data), assembling overflow chains when necessary.
  StatusOr<std::string> ReadContent(NodeId node) const;

  /// XPath string-value: for elements/documents, the concatenation of all
  /// descendant text nodes; for other kinds the content itself.
  StatusOr<std::string> StringValue(NodeId node) const;

  // -- Catalog & dictionary ------------------------------------------------

  NameDictionary* names() { return &names_; }
  const NameDictionary* names() const { return &names_; }

  Status AddDocument(const DocumentInfo& info);
  /// Looks a document up by name; kNotFound when absent.
  StatusOr<DocumentInfo> FindDocument(std::string_view name) const;
  const std::vector<DocumentInfo>& documents() const { return documents_; }

  /// Persists catalog, dictionary, superblock and all dirty pages.
  Status Flush();

  BufferManager* buffer_manager() { return buffer_.get(); }
  const BufferManager* buffer_manager() const { return buffer_.get(); }

  /// Pinning through a const NodeStore (reads only fault pages in; the
  /// buffer manager's internal state is logically mutable).
  BufferManager* buffer_manager_for_accessor() const { return buffer_.get(); }

 private:
  NodeStore(std::unique_ptr<PagedFile> file, const Options& options);

  Status InitializeNew();
  Status LoadExisting();
  /// Serializes a metadata blob into a fresh chain of raw pages,
  /// returning the head page id.
  StatusOr<PageId> WriteBlobChain(const std::string& blob);
  StatusOr<std::string> ReadBlobChain(PageId head) const;
  /// Stores `content` into overflow chunks, returning the chain head.
  StatusOr<NodeId> WriteOverflow(std::string_view content);

  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<BufferManager> buffer_;
  NameDictionary names_;
  std::vector<DocumentInfo> documents_;
  /// Page currently receiving node inserts.
  PageId fill_page_ = kInvalidPage;
  uint64_t next_order_key_ = 0;
};

/// A read-through accessor that keeps the most recently touched page
/// pinned, so chains of header reads along sibling/child links (the axis
/// cursor hot path) skip the buffer-manager lookup while they stay on one
/// page.
class NodeAccessor {
 public:
  NodeAccessor() = default;
  explicit NodeAccessor(const NodeStore* store) : store_(store) {}

  Status ReadHeader(NodeId node, NodeHeader* header);

 private:
  const NodeStore* store_ = nullptr;
  PageHandle cached_;
};

}  // namespace natix::storage

#endif  // NATIX_STORAGE_NODE_STORE_H_
