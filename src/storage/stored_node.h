#ifndef NATIX_STORAGE_STORED_NODE_H_
#define NATIX_STORAGE_STORED_NODE_H_

#include <string>

#include "base/statusor.h"
#include "storage/node_store.h"

namespace natix::storage {

/// A convenience handle for navigating stored nodes: a (store, id) pair
/// with accessor methods. Used by examples and tests; the query engine
/// itself navigates through runtime::node_ops for tighter control.
class StoredNode {
 public:
  StoredNode() = default;
  StoredNode(const NodeStore* store, NodeId id) : store_(store), id_(id) {}

  bool valid() const { return store_ != nullptr && id_.valid(); }
  NodeId id() const { return id_; }
  const NodeStore* store() const { return store_; }

  StatusOr<StoredNodeKind> kind() const;
  /// Element/attribute name or PI target ("" for unnamed kinds).
  StatusOr<std::string> name() const;
  /// Attribute value / text / comment / PI content.
  StatusOr<std::string> content() const;
  /// XPath string-value.
  StatusOr<std::string> string_value() const;
  StatusOr<uint64_t> order() const;

  StatusOr<StoredNode> parent() const;
  StatusOr<StoredNode> first_child() const;
  StatusOr<StoredNode> next_sibling() const;
  StatusOr<StoredNode> prev_sibling() const;
  StatusOr<StoredNode> first_attribute() const;

  friend bool operator==(const StoredNode& a, const StoredNode& b) {
    return a.store_ == b.store_ && a.id_ == b.id_;
  }

 private:
  StatusOr<StoredNode> Link(NodeId NodeRecord::* field) const;

  const NodeStore* store_ = nullptr;
  NodeId id_;
};

}  // namespace natix::storage

#endif  // NATIX_STORAGE_STORED_NODE_H_
