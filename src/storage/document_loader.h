#ifndef NATIX_STORAGE_DOCUMENT_LOADER_H_
#define NATIX_STORAGE_DOCUMENT_LOADER_H_

#include <string>
#include <string_view>

#include "base/statusor.h"
#include "storage/node_store.h"

namespace natix::storage {

/// Parses XML text and appends it to the store as a new document named
/// `document_name`, registering it in the catalog. Returns the document
/// info (root node id, node count).
///
/// The loader streams parser events straight into node records: no DOM is
/// materialized, and sibling/parent links are patched in place as the tree
/// unfolds — this is the load path of the paper's native store.
StatusOr<DocumentInfo> LoadDocument(NodeStore* store,
                                    std::string_view document_name,
                                    std::string_view xml_text);

}  // namespace natix::storage

#endif  // NATIX_STORAGE_DOCUMENT_LOADER_H_
