#ifndef NATIX_STORAGE_BUFFER_MANAGER_H_
#define NATIX_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "storage/paged_file.h"

namespace natix::storage {

class BufferManager;

/// RAII pin on a page frame. The referenced memory is valid (and the page
/// cannot be evicted) while the handle is alive. Copying a handle takes an
/// additional pin.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(const PageHandle& other);
  PageHandle& operator=(const PageHandle& other);
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle();

  bool valid() const { return manager_ != nullptr; }
  PageId page_id() const { return page_id_; }

  const uint8_t* data() const;
  /// Grants write access and marks the frame dirty.
  uint8_t* mutable_data();

  void Release();

 private:
  friend class BufferManager;
  PageHandle(BufferManager* manager, PageId page_id, size_t frame)
      : manager_(manager), page_id_(page_id), frame_(frame) {}

  BufferManager* manager_ = nullptr;
  PageId page_id_ = kInvalidPage;
  size_t frame_ = 0;
};

/// A classic pin/unpin buffer manager with LRU replacement over a
/// PagedFile — the "Natix page buffer" the paper's physical algebra
/// navigates directly (Sec. 5.2.2).
///
/// Thread safety: the pin/unpin/fault bookkeeping is serialized by an
/// internal mutex, so concurrent read-only queries (each with its own
/// Plan) can share one store. Writers (document loading) must not run
/// concurrently with anything else.
class BufferManager {
 public:
  /// `capacity` is the number of page frames held in memory.
  BufferManager(PagedFile* file, size_t capacity);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins page `id`, faulting it in if necessary.
  StatusOr<PageHandle> FixPage(PageId id);

  /// Allocates a fresh page in the file and pins it.
  StatusOr<PageHandle> NewPage();

  /// Writes back all dirty frames.
  Status FlushAll();

  /// Statistics for tests, benchmarks, and the observability layer
  /// (src/obs). Counters are relaxed atomics: they are incremented under
  /// the internal mutex but read lock-free by per-query stats capture
  /// while other queries run.
  uint64_t fault_count() const {
    return fault_count_.load(std::memory_order_relaxed);
  }
  /// Fixes served from the pool without touching the file.
  uint64_t hit_count() const {
    return hit_count_.load(std::memory_order_relaxed);
  }
  /// Dirty pages written back (eviction or FlushAll).
  uint64_t write_count() const {
    return write_count_.load(std::memory_order_relaxed);
  }
  uint64_t eviction_count() const {
    return eviction_count_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return frames_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPage;
    uint32_t pin_count = 0;
    bool dirty = false;
    /// Position in lru_ when unpinned.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
    std::unique_ptr<uint8_t[]> data;
  };

  void Pin(size_t frame);
  void Unpin(size_t frame);
  Status EvictOne(size_t* frame_out);  // caller holds mutex_

  PagedFile* file_;
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  /// Unpinned frames, least recently used first.
  std::list<size_t> lru_;
  std::unordered_map<PageId, size_t> page_table_;
  std::atomic<uint64_t> fault_count_{0};
  std::atomic<uint64_t> hit_count_{0};
  std::atomic<uint64_t> write_count_{0};
  std::atomic<uint64_t> eviction_count_{0};
};

}  // namespace natix::storage

#endif  // NATIX_STORAGE_BUFFER_MANAGER_H_
