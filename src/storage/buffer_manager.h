#ifndef NATIX_STORAGE_BUFFER_MANAGER_H_
#define NATIX_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"
#include "storage/paged_file.h"

namespace natix::storage {

class BufferManager;

/// RAII pin on a page frame. The referenced memory is valid (and the page
/// cannot be evicted) while the handle is alive. Copying a handle takes an
/// additional pin.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(const PageHandle& other);
  PageHandle& operator=(const PageHandle& other);
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle();

  bool valid() const { return manager_ != nullptr; }
  PageId page_id() const { return page_id_; }

  const uint8_t* data() const;
  /// Grants write access and marks the frame dirty.
  uint8_t* mutable_data();

  void Release();

 private:
  friend class BufferManager;
  PageHandle(BufferManager* manager, PageId page_id, size_t frame)
      : manager_(manager), page_id_(page_id), frame_(frame) {}

  BufferManager* manager_ = nullptr;
  PageId page_id_ = kInvalidPage;
  size_t frame_ = 0;
};

/// A striped pin/unpin buffer manager with per-shard LRU replacement over
/// a PagedFile — the "Natix page buffer" the paper's physical algebra
/// navigates directly (Sec. 5.2.2).
///
/// The pool is partitioned into `shards` independent stripes; a page
/// belongs to the shard `page_id % shards`, and each shard serializes its
/// own page table, free list and LRU behind its own mutex, so concurrent
/// read-only executions contend per stripe instead of on one pool-wide
/// lock. Pin counts are atomic per frame: copying an already-valid
/// PageHandle (an extra pin on a pinned frame) never takes a lock.
///
/// Thread safety: FixPage/NewPage/FlushAll/Snapshot and handle
/// copy/release may be called from any thread. Writers (document
/// loading) must not run concurrently with readers — the caller
/// serializes load vs. query, not the pool.
class BufferManager {
 public:
  /// `capacity` is the number of page frames held in memory, distributed
  /// as evenly as possible over `shards` stripes (capacity must be >=
  /// shards; shards >= 1). One shard reproduces the classic single-lock,
  /// single-LRU pool exactly.
  BufferManager(PagedFile* file, size_t capacity, size_t shards = 1);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins page `id`, faulting it in if necessary.
  StatusOr<PageHandle> FixPage(PageId id);

  /// Allocates a fresh page in the file and pins it.
  StatusOr<PageHandle> NewPage();

  /// Writes back all dirty frames.
  Status FlushAll();

  /// A coherent point-in-time snapshot of all four counters: every shard
  /// mutex is held while reading, so no increment can land between the
  /// four reads. Per-query deltas in src/obs subtract two snapshots and
  /// therefore never tear across shards (a torn read could otherwise
  /// show, e.g., a fault without its matching eviction).
  struct CounterSnapshot {
    uint64_t faults = 0;     ///< pages faulted in from the file
    uint64_t hits = 0;       ///< fixes served from the pool
    uint64_t writes = 0;     ///< dirty pages written back
    uint64_t evictions = 0;  ///< frames reclaimed from an LRU list
  };
  CounterSnapshot Snapshot() const;

  /// Per-shard snapshot in shard order, plus the frames each shard
  /// currently maps (its page-table size). Each shard is read under its
  /// own mutex; unlike Snapshot() the shards are not locked jointly, so
  /// cross-shard sums may skew by in-flight increments — fine for the
  /// /statusz rendering this feeds.
  struct ShardSnapshot {
    uint64_t faults = 0;
    uint64_t hits = 0;
    uint64_t writes = 0;
    uint64_t evictions = 0;
    size_t resident_pages = 0;  ///< pages currently mapped by the shard
  };
  std::vector<ShardSnapshot> ShardSnapshots() const;

  /// Statistics for tests, benchmarks, and the observability layer
  /// (src/obs). Counters are relaxed atomics summed over shards: cheap to
  /// read while other queries run, but a multi-counter read can tear —
  /// use Snapshot() for coherent deltas.
  uint64_t fault_count() const { return SumCounter(&Shard::faults); }
  /// Fixes served from the pool without touching the file.
  uint64_t hit_count() const { return SumCounter(&Shard::hits); }
  /// Dirty pages written back (eviction or FlushAll).
  uint64_t write_count() const { return SumCounter(&Shard::writes); }
  uint64_t eviction_count() const { return SumCounter(&Shard::evictions); }

  size_t capacity() const { return frames_.size(); }
  size_t shard_count() const { return shards_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPage;
    /// The owning shard (fixed at construction).
    uint32_t shard = 0;
    /// Atomic so an extra pin on an already-pinned frame (handle copy)
    /// and the fast path of Unpin skip the shard mutex. A frame with
    /// pin_count > 0 is never in an LRU list and never evicted.
    std::atomic<uint32_t> pin_count{0};
    /// Relaxed atomic: set by writers holding a pin, read by eviction /
    /// flush under the shard mutex.
    std::atomic<bool> dirty{false};
    /// Position in the shard's lru when unpinned.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
    std::unique_ptr<uint8_t[]> data;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<size_t> free_frames;
    /// Unpinned frames, least recently used first (global frame indices).
    std::list<size_t> lru;
    std::unordered_map<PageId, size_t> page_table;
    // Counters are incremented only under `mutex`; atomic so the lock-free
    // accessors above may read them concurrently.
    std::atomic<uint64_t> faults{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> evictions{0};
  };

  size_t ShardOf(PageId id) const { return id % shards_.size(); }

  uint64_t SumCounter(std::atomic<uint64_t> Shard::* counter) const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += (shard.*counter).load(std::memory_order_relaxed);
    }
    return total;
  }

  void Pin(size_t frame);
  void Unpin(size_t frame);
  /// Claims a frame for `shard` from its free list or by evicting its LRU
  /// victim. Caller holds the shard mutex.
  StatusOr<size_t> ClaimFrame(Shard& shard);

  PagedFile* file_;
  /// Serializes PagedFile::AllocatePage (the file's page counter is not
  /// itself thread-safe).
  std::mutex alloc_mutex_;
  /// Globally indexed so PageHandle stays a (manager, frame) pair; each
  /// frame is owned by exactly one shard and never migrates.
  std::vector<Frame> frames_;
  std::vector<Shard> shards_;
};

}  // namespace natix::storage

#endif  // NATIX_STORAGE_BUFFER_MANAGER_H_
