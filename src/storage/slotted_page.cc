#include "storage/slotted_page.h"

#include <cstring>

#include "base/logging.h"

namespace natix::storage {

namespace {

// Header field accessors. All on-page integers are little-endian native;
// the store is not meant to be copied across architectures.
uint16_t LoadU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

constexpr size_t kSlotCountOffset = 0;
constexpr size_t kFreeEndOffset = 2;
constexpr size_t kHeaderSize = 4;

}  // namespace

void SlottedPage::Init(uint8_t* page) {
  StoreU16(page + kSlotCountOffset, 0);
  StoreU16(page + kFreeEndOffset, static_cast<uint16_t>(kPageSize - 1));
  // kPageSize == 8192 does not fit in uint16; store free_end as
  // (kPageSize - 1) and treat it as exclusive-upper-bound-minus-one.
}

uint16_t SlottedPage::slot_count(const uint8_t* page) {
  return LoadU16(page + kSlotCountOffset);
}

size_t SlottedPage::FreeSpace(const uint8_t* page) {
  size_t free_end = LoadU16(page + kFreeEndOffset) + 1;
  size_t dir_end = kHeaderSize + slot_count(page) * kSlotEntrySize;
  NATIX_DCHECK(free_end >= dir_end);
  return free_end - dir_end;
}

bool SlottedPage::HasRoomFor(const uint8_t* page, size_t record_size) {
  return FreeSpace(page) >= record_size + kSlotEntrySize;
}

uint16_t SlottedPage::Insert(uint8_t* page, const void* record,
                             uint16_t size) {
  NATIX_DCHECK(HasRoomFor(page, size));
  uint16_t count = slot_count(page);
  size_t free_end = LoadU16(page + kFreeEndOffset) + 1;
  size_t offset = free_end - size;
  std::memcpy(page + offset, record, size);
  uint8_t* slot_entry = page + kHeaderSize + count * kSlotEntrySize;
  StoreU16(slot_entry, static_cast<uint16_t>(offset));
  StoreU16(slot_entry + 2, size);
  StoreU16(page + kSlotCountOffset, count + 1);
  StoreU16(page + kFreeEndOffset, static_cast<uint16_t>(offset - 1));
  return count;
}

std::pair<const uint8_t*, uint16_t> SlottedPage::Read(const uint8_t* page,
                                                      uint16_t slot) {
  NATIX_DCHECK(slot < slot_count(page));
  const uint8_t* slot_entry = page + kHeaderSize + slot * kSlotEntrySize;
  uint16_t offset = LoadU16(slot_entry);
  uint16_t size = LoadU16(slot_entry + 2);
  return {page + offset, size};
}

uint8_t* SlottedPage::MutableRecord(uint8_t* page, uint16_t slot) {
  NATIX_DCHECK(slot < slot_count(page));
  const uint8_t* slot_entry = page + kHeaderSize + slot * kSlotEntrySize;
  uint16_t offset = LoadU16(slot_entry);
  return page + offset;
}

}  // namespace natix::storage
