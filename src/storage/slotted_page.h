#ifndef NATIX_STORAGE_SLOTTED_PAGE_H_
#define NATIX_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <utility>

#include "storage/paged_file.h"

namespace natix::storage {

/// Static helpers imposing a slotted-record layout on a raw page image:
///
///   [slot_count][free_end][slot 0][slot 1]...        records ...[page end]
///
/// The slot directory grows forward from the header; the record heap grows
/// backward from the end of the page. Records are never moved, so a
/// (page, slot) pair is a stable record id — the basis of node ids.
class SlottedPage {
 public:
  /// Per-insert overhead: one directory entry.
  static constexpr size_t kSlotEntrySize = 4;
  /// Largest record that fits on a freshly initialized page.
  static constexpr size_t kMaxRecordSize =
      kPageSize - 4 /*header*/ - kSlotEntrySize;

  /// Formats an empty page.
  static void Init(uint8_t* page);

  static uint16_t slot_count(const uint8_t* page);
  static size_t FreeSpace(const uint8_t* page);
  static bool HasRoomFor(const uint8_t* page, size_t record_size);

  /// Appends a record; the caller must have checked HasRoomFor.
  /// Returns the new record's slot number.
  static uint16_t Insert(uint8_t* page, const void* record, uint16_t size);

  /// Read access to record `slot`: pointer and length.
  static std::pair<const uint8_t*, uint16_t> Read(const uint8_t* page,
                                                  uint16_t slot);

  /// Write access to record `slot` for in-place updates that keep the
  /// record length unchanged.
  static uint8_t* MutableRecord(uint8_t* page, uint16_t slot);
};

}  // namespace natix::storage

#endif  // NATIX_STORAGE_SLOTTED_PAGE_H_
