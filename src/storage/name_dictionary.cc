#include "storage/name_dictionary.h"

#include <cstring>

#include "base/logging.h"

namespace natix::storage {

uint32_t NameDictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

uint32_t NameDictionary::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidNameId : it->second;
}

const std::string& NameDictionary::NameOf(uint32_t id) const {
  NATIX_CHECK(id < names_.size());
  return names_[id];
}

void NameDictionary::AppendTo(std::string* blob) const {
  uint32_t count = static_cast<uint32_t>(names_.size());
  blob->append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const std::string& name : names_) {
    uint32_t len = static_cast<uint32_t>(name.size());
    blob->append(reinterpret_cast<const char*>(&len), sizeof(len));
    blob->append(name);
  }
}

size_t NameDictionary::ParseFrom(std::string_view blob) {
  names_.clear();
  index_.clear();
  size_t pos = 0;
  uint32_t count;
  if (blob.size() < sizeof(count)) return 0;
  std::memcpy(&count, blob.data(), sizeof(count));
  pos += sizeof(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len;
    if (blob.size() - pos < sizeof(len)) return 0;
    std::memcpy(&len, blob.data() + pos, sizeof(len));
    pos += sizeof(len);
    if (blob.size() - pos < len) return 0;
    names_.emplace_back(blob.substr(pos, len));
    index_.emplace(names_.back(), i);
    pos += len;
  }
  return pos;
}

}  // namespace natix::storage
