#ifndef NATIX_STORAGE_PAGED_FILE_H_
#define NATIX_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/status.h"
#include "base/statusor.h"

namespace natix::storage {

/// Size of every page in a Natix store. 8 KiB, matching typical database
/// page sizes (and the original system's default).
inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// A file of fixed-size pages with explicit read/write/allocate calls.
/// Page 0 is reserved for the store superblock. All I/O goes through the
/// BufferManager in normal operation.
class PagedFile {
 public:
  ~PagedFile();

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Opens (or with `create` truncates/creates) a paged file on disk.
  static StatusOr<std::unique_ptr<PagedFile>> Open(const std::string& path,
                                                   bool create);

  /// Creates an anonymous temporary paged file, removed on close. Used by
  /// tests, examples, and benchmarks that need a scratch store.
  static StatusOr<std::unique_ptr<PagedFile>> OpenTemp();

  /// Appends a zeroed page and returns its id.
  StatusOr<PageId> AllocatePage();

  /// Reads page `id` into `buffer` (kPageSize bytes).
  Status ReadPage(PageId id, void* buffer) const;

  /// Writes `buffer` (kPageSize bytes) to page `id`.
  Status WritePage(PageId id, const void* buffer);

  /// Forces written pages to the OS.
  Status Sync();

  uint32_t page_count() const { return page_count_; }

 private:
  PagedFile(int fd, uint32_t page_count, std::string path)
      : fd_(fd), page_count_(page_count), path_(std::move(path)) {}

  int fd_;
  uint32_t page_count_;
  std::string path_;
};

}  // namespace natix::storage

#endif  // NATIX_STORAGE_PAGED_FILE_H_
