#include "storage/buffer_manager.h"

#include <cstring>
#include <memory>

#include "base/logging.h"
#include "obs/lock_ledger.h"

namespace natix::storage {

namespace {

/// Ledger instance id of shard `s`: 1-based so 0 keeps its "use the
/// mutex address" meaning in the guard, and ascending with the index —
/// the order Snapshot() takes them in.
uintptr_t ShardInstance(size_t s) { return static_cast<uintptr_t>(s + 1); }

}  // namespace

PageHandle::PageHandle(const PageHandle& other)
    : manager_(other.manager_), page_id_(other.page_id_),
      frame_(other.frame_) {
  if (manager_ != nullptr) manager_->Pin(frame_);
}

PageHandle& PageHandle::operator=(const PageHandle& other) {
  if (this == &other) return *this;
  Release();
  manager_ = other.manager_;
  page_id_ = other.page_id_;
  frame_ = other.frame_;
  if (manager_ != nullptr) manager_->Pin(frame_);
  return *this;
}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : manager_(other.manager_), page_id_(other.page_id_),
      frame_(other.frame_) {
  other.manager_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this == &other) return *this;
  Release();
  manager_ = other.manager_;
  page_id_ = other.page_id_;
  frame_ = other.frame_;
  other.manager_ = nullptr;
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (manager_ != nullptr) {
    manager_->Unpin(frame_);
    manager_ = nullptr;
  }
}

const uint8_t* PageHandle::data() const {
  NATIX_DCHECK(valid());
  return manager_->frames_[frame_].data.get();
}

uint8_t* PageHandle::mutable_data() {
  NATIX_DCHECK(valid());
  manager_->frames_[frame_].dirty.store(true, std::memory_order_relaxed);
  return manager_->frames_[frame_].data.get();
}

BufferManager::BufferManager(PagedFile* file, size_t capacity, size_t shards)
    : file_(file), frames_(capacity), shards_(shards == 0 ? 1 : shards) {
  NATIX_CHECK(capacity >= shards_.size());
  // Distribute frames over shards as evenly as possible; shard s owns a
  // contiguous run of global frame indices.
  size_t next = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    size_t count = capacity / shards_.size() +
                   (s < capacity % shards_.size() ? 1 : 0);
    shards_[s].free_frames.reserve(count);
    size_t begin = next;
    for (size_t i = 0; i < count; ++i, ++next) {
      frames_[next].shard = static_cast<uint32_t>(s);
      frames_[next].data = std::make_unique<uint8_t[]>(kPageSize);
      // Free frames are handed out lowest-index-first (back of the list),
      // matching the classic single-shard pool's allocation order.
      shards_[s].free_frames.push_back(begin + count - 1 - i);
    }
  }
}

BufferManager::~BufferManager() {
  // Best-effort write-back; callers that care about durability call
  // FlushAll explicitly and check the status.
  (void)FlushAll();
}

void BufferManager::Pin(size_t frame) {
  // Only reachable by copying a valid handle: the frame is already
  // pinned, hence not in any LRU list and not evictable — a plain
  // increment suffices, no shard lock.
  uint32_t prev =
      frames_[frame].pin_count.fetch_add(1, std::memory_order_relaxed);
  NATIX_DCHECK(prev > 0);
  (void)prev;
}

void BufferManager::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  uint32_t prev = f.pin_count.fetch_sub(1, std::memory_order_acq_rel);
  NATIX_DCHECK(prev > 0);
  if (prev != 1) return;
  // Possibly the last pin: move the frame to its shard's LRU list. The
  // frame may have been re-pinned by a concurrent FixPage between the
  // decrement and the lock, so every condition is re-checked under the
  // shard mutex (FixPage holds it for the matching transitions).
  Shard& shard = shards_[f.shard];
  obs::LedgeredMutexLock lock(shard.mutex, obs::LockClass::kBufferShard,
                              ShardInstance(f.shard));
  if (f.pin_count.load(std::memory_order_relaxed) == 0 && !f.in_lru &&
      f.page_id != kInvalidPage) {
    f.lru_pos = shard.lru.insert(shard.lru.end(), frame);
    f.in_lru = true;
  }
}

StatusOr<size_t> BufferManager::ClaimFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    size_t frame = shard.free_frames.back();
    shard.free_frames.pop_back();
    return frame;
  }
  if (shard.lru.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames of the page's shard are pinned");
  }
  size_t frame = shard.lru.front();
  shard.lru.pop_front();
  Frame& f = frames_[frame];
  f.in_lru = false;
  if (f.dirty.load(std::memory_order_relaxed)) {
    NATIX_RETURN_IF_ERROR(file_->WritePage(f.page_id, f.data.get()));
    f.dirty.store(false, std::memory_order_relaxed);
    shard.writes.fetch_add(1, std::memory_order_relaxed);
  }
  shard.page_table.erase(f.page_id);
  f.page_id = kInvalidPage;
  shard.evictions.fetch_add(1, std::memory_order_relaxed);
  return frame;
}

StatusOr<PageHandle> BufferManager::FixPage(PageId id) {
  const size_t shard_index = ShardOf(id);
  Shard& shard = shards_[shard_index];
  obs::LedgeredMutexLock lock(shard.mutex, obs::LockClass::kBufferShard,
                              ShardInstance(shard_index));
  auto it = shard.page_table.find(id);
  if (it != shard.page_table.end()) {
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.in_lru) {
      shard.lru.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.pin_count.fetch_add(1, std::memory_order_relaxed);
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    return PageHandle(this, id, frame);
  }
  shard.faults.fetch_add(1, std::memory_order_relaxed);
  NATIX_ASSIGN_OR_RETURN(size_t frame, ClaimFrame(shard));
  Frame& f = frames_[frame];
  // The read runs under the shard lock: faults on one stripe serialize,
  // but hits and faults on other stripes proceed (PagedFile reads are
  // positioned pread calls, safe concurrently).
  Status st = file_->ReadPage(id, f.data.get());
  if (!st.ok()) {
    shard.free_frames.push_back(frame);
    return st;
  }
  f.page_id = id;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  shard.page_table[id] = frame;
  return PageHandle(this, id, frame);
}

StatusOr<PageHandle> BufferManager::NewPage() {
  PageId id;
  {
    obs::LedgeredMutexLock alloc_lock(alloc_mutex_,
                                      obs::LockClass::kBufferAlloc);
    NATIX_ASSIGN_OR_RETURN(id, file_->AllocatePage());
  }
  const size_t shard_index = ShardOf(id);
  Shard& shard = shards_[shard_index];
  obs::LedgeredMutexLock lock(shard.mutex, obs::LockClass::kBufferShard,
                              ShardInstance(shard_index));
  NATIX_ASSIGN_OR_RETURN(size_t frame, ClaimFrame(shard));
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(true, std::memory_order_relaxed);
  shard.page_table[id] = frame;
  return PageHandle(this, id, frame);
}

Status BufferManager::FlushAll() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    obs::LedgeredMutexLock lock(shard.mutex, obs::LockClass::kBufferShard,
                                ShardInstance(s));
    for (Frame& f : frames_) {
      if (f.shard != s) continue;
      if (f.page_id != kInvalidPage &&
          f.dirty.load(std::memory_order_relaxed)) {
        NATIX_RETURN_IF_ERROR(file_->WritePage(f.page_id, f.data.get()));
        f.dirty.store(false, std::memory_order_relaxed);
        shard.writes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return Status::OK();
}

BufferManager::CounterSnapshot BufferManager::Snapshot() const {
  // Lock every shard (in index order — the only multi-shard acquisition,
  // so no ordering conflicts), then read: no increment can interleave.
  std::vector<std::unique_ptr<obs::LedgeredMutexLock>> locks;
  locks.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    locks.push_back(std::make_unique<obs::LedgeredMutexLock>(
        shards_[s].mutex, obs::LockClass::kBufferShard, ShardInstance(s)));
  }
  CounterSnapshot snap;
  for (const Shard& shard : shards_) {
    snap.faults += shard.faults.load(std::memory_order_relaxed);
    snap.hits += shard.hits.load(std::memory_order_relaxed);
    snap.writes += shard.writes.load(std::memory_order_relaxed);
    snap.evictions += shard.evictions.load(std::memory_order_relaxed);
  }
  return snap;
}

std::vector<BufferManager::ShardSnapshot> BufferManager::ShardSnapshots()
    const {
  std::vector<ShardSnapshot> out;
  out.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    obs::LedgeredMutexLock lock(shard.mutex, obs::LockClass::kBufferShard,
                                ShardInstance(s));
    ShardSnapshot snap;
    snap.faults = shard.faults.load(std::memory_order_relaxed);
    snap.hits = shard.hits.load(std::memory_order_relaxed);
    snap.writes = shard.writes.load(std::memory_order_relaxed);
    snap.evictions = shard.evictions.load(std::memory_order_relaxed);
    snap.resident_pages = shard.page_table.size();
    out.push_back(snap);
  }
  return out;
}

}  // namespace natix::storage
