#include "storage/buffer_manager.h"

#include <cstring>

#include "base/logging.h"

namespace natix::storage {

PageHandle::PageHandle(const PageHandle& other)
    : manager_(other.manager_), page_id_(other.page_id_),
      frame_(other.frame_) {
  if (manager_ != nullptr) manager_->Pin(frame_);
}

PageHandle& PageHandle::operator=(const PageHandle& other) {
  if (this == &other) return *this;
  Release();
  manager_ = other.manager_;
  page_id_ = other.page_id_;
  frame_ = other.frame_;
  if (manager_ != nullptr) manager_->Pin(frame_);
  return *this;
}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : manager_(other.manager_), page_id_(other.page_id_),
      frame_(other.frame_) {
  other.manager_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this == &other) return *this;
  Release();
  manager_ = other.manager_;
  page_id_ = other.page_id_;
  frame_ = other.frame_;
  other.manager_ = nullptr;
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (manager_ != nullptr) {
    manager_->Unpin(frame_);
    manager_ = nullptr;
  }
}

const uint8_t* PageHandle::data() const {
  NATIX_DCHECK(valid());
  return manager_->frames_[frame_].data.get();
}

uint8_t* PageHandle::mutable_data() {
  NATIX_DCHECK(valid());
  manager_->frames_[frame_].dirty = true;
  return manager_->frames_[frame_].data.get();
}

BufferManager::BufferManager(PagedFile* file, size_t capacity)
    : file_(file), frames_(capacity) {
  NATIX_CHECK(capacity > 0);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
    free_frames_.push_back(capacity - 1 - i);
  }
}

BufferManager::~BufferManager() {
  // Best-effort write-back; callers that care about durability call
  // FlushAll explicitly and check the status.
  (void)FlushAll();
}

void BufferManager::Pin(size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame];
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pin_count;
}

void BufferManager::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame];
  NATIX_DCHECK(f.pin_count > 0);
  if (--f.pin_count == 0) {
    f.lru_pos = lru_.insert(lru_.end(), frame);
    f.in_lru = true;
  }
}

Status BufferManager::EvictOne(size_t* frame_out) {
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all frames are pinned");
  }
  size_t frame = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[frame];
  f.in_lru = false;
  if (f.dirty) {
    NATIX_RETURN_IF_ERROR(file_->WritePage(f.page_id, f.data.get()));
    f.dirty = false;
    write_count_.fetch_add(1, std::memory_order_relaxed);
  }
  page_table_.erase(f.page_id);
  f.page_id = kInvalidPage;
  eviction_count_.fetch_add(1, std::memory_order_relaxed);
  *frame_out = frame;
  return Status::OK();
}

StatusOr<PageHandle> BufferManager::FixPage(PageId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    hit_count_.fetch_add(1, std::memory_order_relaxed);
    return PageHandle(this, id, frame);
  }
  fault_count_.fetch_add(1, std::memory_order_relaxed);
  size_t frame;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    NATIX_RETURN_IF_ERROR(EvictOne(&frame));
  }
  Frame& f = frames_[frame];
  Status st = file_->ReadPage(id, f.data.get());
  if (!st.ok()) {
    free_frames_.push_back(frame);
    return st;
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  page_table_[id] = frame;
  return PageHandle(this, id, frame);
}

StatusOr<PageHandle> BufferManager::NewPage() {
  std::lock_guard<std::mutex> lock(mutex_);
  NATIX_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
  size_t frame;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    NATIX_RETURN_IF_ERROR(EvictOne(&frame));
  }
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  page_table_[id] = frame;
  return PageHandle(this, id, frame);
}

Status BufferManager::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPage && f.dirty) {
      NATIX_RETURN_IF_ERROR(file_->WritePage(f.page_id, f.data.get()));
      f.dirty = false;
      write_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

}  // namespace natix::storage
