#include "storage/stored_node.h"

namespace natix::storage {

StatusOr<StoredNodeKind> StoredNode::kind() const {
  NodeRecord record;
  NATIX_RETURN_IF_ERROR(store_->ReadNode(id_, &record));
  return record.kind;
}

StatusOr<std::string> StoredNode::name() const {
  NodeRecord record;
  NATIX_RETURN_IF_ERROR(store_->ReadNode(id_, &record));
  if (record.name_id == kInvalidNameId) return std::string();
  return store_->names()->NameOf(record.name_id);
}

StatusOr<std::string> StoredNode::content() const {
  return store_->ReadContent(id_);
}

StatusOr<std::string> StoredNode::string_value() const {
  return store_->StringValue(id_);
}

StatusOr<uint64_t> StoredNode::order() const {
  NodeRecord record;
  NATIX_RETURN_IF_ERROR(store_->ReadNode(id_, &record));
  return record.order;
}

StatusOr<StoredNode> StoredNode::Link(NodeId NodeRecord::* field) const {
  NodeRecord record;
  NATIX_RETURN_IF_ERROR(store_->ReadNode(id_, &record));
  return StoredNode(store_, record.*field);
}

StatusOr<StoredNode> StoredNode::parent() const {
  return Link(&NodeRecord::parent);
}
StatusOr<StoredNode> StoredNode::first_child() const {
  return Link(&NodeRecord::first_child);
}
StatusOr<StoredNode> StoredNode::next_sibling() const {
  return Link(&NodeRecord::next_sibling);
}
StatusOr<StoredNode> StoredNode::prev_sibling() const {
  return Link(&NodeRecord::prev_sibling);
}
StatusOr<StoredNode> StoredNode::first_attribute() const {
  return Link(&NodeRecord::first_attr);
}

}  // namespace natix::storage
