#ifndef NATIX_STORAGE_NAME_DICTIONARY_H_
#define NATIX_STORAGE_NAME_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace natix::storage {

inline constexpr uint32_t kInvalidNameId = 0xFFFFFFFFu;

/// Interns element/attribute/PI names to dense integer ids so node records
/// store 4 bytes instead of strings, and name tests compare integers.
/// Held fully in memory; (de)serialized into the store's metadata chain.
class NameDictionary {
 public:
  /// Returns the id of `name`, inserting it if new.
  uint32_t Intern(std::string_view name);

  /// Returns the id of `name` or kInvalidNameId when not present.
  uint32_t Lookup(std::string_view name) const;

  /// The name for a valid id.
  const std::string& NameOf(uint32_t id) const;

  size_t size() const { return names_.size(); }

  /// Serialization for the store metadata blob.
  void AppendTo(std::string* blob) const;
  /// Replaces the contents from a serialized blob; returns bytes consumed
  /// or 0 on corruption.
  size_t ParseFrom(std::string_view blob);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace natix::storage

#endif  // NATIX_STORAGE_NAME_DICTIONARY_H_
