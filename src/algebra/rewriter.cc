#include "algebra/rewriter.h"

#include <limits>
#include <utility>

#include "algebra/properties.h"
#include "analysis/plan_verifier.h"
#include "analysis/property_inference.h"
#include "obs/trace.h"
#include "runtime/node_ops.h"

namespace natix::algebra {

using analysis::Cardinality;
using analysis::OrderState;
using analysis::PlanProperties;

SequenceProperties InferProperties(const Operator& op) {
  PlanProperties inferred = analysis::InferPlanProperties(op);
  SequenceProperties props;
  props.singleton = inferred.AtMostOne();
  for (const auto& [name, attr] : inferred.attrs) {
    if (attr.duplicate_free) props.duplicate_free.insert(name);
    if (attr.order == OrderState::kDocOrdered) props.ordered_by.insert(name);
    if (attr.non_nested) props.non_nested.insert(name);
  }
  return props;
}

namespace {

/// Rewrite session state: the plan root (for whole-plan re-verification
/// after each rule), the attributes the plan may legitimately read from
/// its context, the rewrite log, and the first verification failure
/// (which stops further rewriting and names the rule that caused it).
struct SimplifyCtx {
  const OpPtr* root = nullptr;
  bool verify = false;
  std::set<std::string> outer;
  RewriteLog* log = nullptr;
  Status status;
};

/// Records one rule application with its proving property.
void LogRewrite(SimplifyCtx* ctx, const char* rule, std::string target,
                std::string justification) {
  if (ctx->log == nullptr) return;
  ctx->log->push_back(RewriteEvent{std::string(rule), std::move(target),
                                   std::move(justification)});
}

/// Re-verifies the plan after `rule` fired: Layer 1 (well-formedness of
/// the whole plan) and, when `before`/`after` are given, Layer 1.5
/// (the rewritten subtree's inferred properties must not weaken).
void CheckAfterRule(SimplifyCtx* ctx, const char* rule,
                    const PlanProperties* before, const Operator* after) {
  if (!ctx->verify || !ctx->status.ok()) return;
  Status st = analysis::VerifyLogicalPlan(**ctx->root, ctx->outer);
  if (!st.ok()) {
    ctx->status = Status::Internal(
        std::string("rewrite rule '") + rule +
        "' produced a malformed plan: " + st.message());
    return;
  }
  if (before != nullptr && after != nullptr) {
    ctx->status = analysis::CheckPropertyPreservation(
        *before, analysis::InferPlanProperties(*after), rule);
  }
}

size_t SimplifyScalar(Scalar* scalar, SimplifyCtx* ctx);

/// Replaces the operator in `slot` by its child at `child_index`,
/// running the Layer-1/1.5 checks. Returns the number of operators that
/// disappeared (the node itself plus any sibling subtrees).
size_t ReplaceByChild(OpPtr* slot, size_t child_index, SimplifyCtx* ctx,
                      const char* rule, std::string justification) {
  Operator* op = slot->get();
  PlanProperties before = analysis::InferPlanProperties(*op);
  size_t dropped = PlanSize(*op) - PlanSize(*op->children[child_index]);
  LogRewrite(ctx, rule, analysis::OperatorSummary(*op),
             std::move(justification));
  *slot = std::move(op->children[child_index]);
  CheckAfterRule(ctx, rule, &before, slot->get());
  return dropped;
}

size_t SimplifyNode(OpPtr* slot, SimplifyCtx* ctx) {
  if (!ctx->status.ok()) return 0;
  size_t removed = 0;
  Operator* op = slot->get();

  // Bottom-up.
  for (OpPtr& child : op->children) removed += SimplifyNode(&child, ctx);
  if (op->scalar != nullptr) {
    removed += SimplifyScalar(op->scalar.get(), ctx);
  }
  if (!ctx->status.ok()) return removed;

  switch (op->kind) {
    case OpKind::kSelect: {
      if (op->scalar->kind == ScalarKind::kBoolConst) {
        if (op->scalar->boolean) {
          return removed + ReplaceByChild(
                               slot, 0, ctx, "drop-constant-true-selection",
                               "constant-true predicate");
        }
        // A constant-false selection IS the plan's statically-empty
        // marker; parents prune against it.
        return removed;
      }
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      if (child.cardinality == Cardinality::kEmpty) {
        return removed + ReplaceByChild(
                             slot, 0, ctx, "drop-selection-on-empty-input",
                             analysis::RenderProperties(child, ""));
      }
      return removed;
    }

    case OpKind::kUnnestMap: {
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      analysis::NodeClass cls = child.Lookup(op->ctx_attr).node_class;
      if (child.cardinality != Cardinality::kEmpty &&
          !analysis::StaticallyEmptyStep(cls, op->axis, op->test)) {
        return removed;
      }
      // No tuple can ever emerge (empty input, or an axis/node-test
      // combination that is empty for the context's static node class,
      // e.g. children of an attribute). Replace the navigation by the
      // canonical statically-empty marker: the child stays — dependent
      // consumers may still reference its bindings — gated by a
      // constant-false selection, and the output attribute becomes a
      // never-evaluated constant.
      PlanProperties before = analysis::InferPlanProperties(*op);
      LogRewrite(ctx, "replace-statically-empty-step",
                 analysis::OperatorSummary(*op),
                 analysis::RenderProperties(child, op->ctx_attr));
      OpPtr select = MakeOp(OpKind::kSelect);
      select->scalar = MakeScalar(ScalarKind::kBoolConst);
      select->scalar->boolean = false;
      select->children.push_back(std::move(op->children[0]));
      OpPtr marker = MakeOp(OpKind::kMap);
      marker->attr = op->attr;
      marker->scalar = MakeScalar(ScalarKind::kNumberConst);
      marker->scalar->number = 0;
      marker->children.push_back(std::move(select));
      *slot = std::move(marker);
      CheckAfterRule(ctx, "replace-statically-empty-step", &before,
                     slot->get());
      return removed + 1;
    }

    case OpKind::kDupElim: {
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      if (child.Lookup(op->attr).duplicate_free) {
        return removed +
               ReplaceByChild(
                   slot, 0, ctx, "drop-redundant-duplicate-elimination",
                   analysis::RenderProperties(child, op->attr));
      }
      return removed;
    }

    case OpKind::kSort: {
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      analysis::AttrProperties attr = child.Lookup(op->attr);
      // Document order must be established and unambiguous: with
      // duplicate sort keys the (unstable) sort may permute payload
      // tuples that share a key.
      if (attr.order == OrderState::kDocOrdered && attr.duplicate_free) {
        return removed + ReplaceByChild(
                             slot, 0, ctx, "drop-redundant-sort",
                             analysis::RenderProperties(child, op->attr));
      }
      return removed;
    }

    case OpKind::kConcat: {
      // Prune statically-empty branches; they contribute no tuples.
      for (size_t i = 0; i < op->children.size() && op->children.size() > 1;) {
        PlanProperties branch =
            analysis::InferPlanProperties(*op->children[i]);
        if (branch.cardinality == Cardinality::kEmpty) {
          removed += PlanSize(*op->children[i]);
          LogRewrite(ctx, "prune-empty-concat-branch",
                     analysis::OperatorSummary(*op->children[i]),
                     analysis::RenderProperties(branch, ""));
          op->children.erase(op->children.begin() +
                             static_cast<ptrdiff_t>(i));
          CheckAfterRule(ctx, "prune-empty-concat-branch", nullptr, nullptr);
          if (!ctx->status.ok()) return removed;
        } else {
          ++i;
        }
      }
      if (op->children.size() == 1) {
        return removed + ReplaceByChild(slot, 0, ctx,
                                        "collapse-single-branch-concat",
                                        "single remaining branch");
      }
      return removed;
    }

    case OpKind::kAntiJoin: {
      PlanProperties right = analysis::InferPlanProperties(*op->children[1]);
      if (right.cardinality == Cardinality::kEmpty) {
        // No right tuple can ever match: the anti join is the identity.
        return removed + ReplaceByChild(
                             slot, 0, ctx, "drop-antijoin-with-empty-right",
                             analysis::RenderProperties(right, ""));
      }
      return removed;
    }

    case OpKind::kSemiJoin: {
      PlanProperties right = analysis::InferPlanProperties(*op->children[1]);
      if (right.cardinality == Cardinality::kEmpty) {
        // No right tuple can ever match: nothing qualifies. Keep the
        // left subtree (its attributes stay bound) under a constant-
        // false selection — the statically-empty marker.
        PlanProperties before = analysis::InferPlanProperties(*op);
        size_t dropped = PlanSize(*op->children[1]);
        LogRewrite(ctx, "empty-semijoin-to-false-selection",
                   analysis::OperatorSummary(*op),
                   analysis::RenderProperties(right, ""));
        OpPtr select = MakeOp(OpKind::kSelect);
        select->scalar = MakeScalar(ScalarKind::kBoolConst);
        select->scalar->boolean = false;
        select->children.push_back(std::move(op->children[0]));
        *slot = std::move(select);
        CheckAfterRule(ctx, "empty-semijoin-to-false-selection", &before,
                       slot->get());
        return removed + dropped;
      }
      return removed;
    }

    case OpKind::kTmpCs: {
      if (!op->ctx_attr.empty()) return removed;
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      if (!child.AtMostOne()) return removed;
      // At most one input tuple means one group of size one (or no
      // output at all): cs is the constant 1, no materialization needed.
      PlanProperties before = analysis::InferPlanProperties(*op);
      LogRewrite(ctx, "replace-singleton-tmpcs",
                 analysis::OperatorSummary(*op),
                 analysis::RenderProperties(child, ""));
      OpPtr map = MakeOp(OpKind::kMap);
      map->attr = op->attr;
      map->scalar = MakeScalar(ScalarKind::kNumberConst);
      map->scalar->number = 1;
      map->children.push_back(std::move(op->children[0]));
      *slot = std::move(map);
      CheckAfterRule(ctx, "replace-singleton-tmpcs", &before, slot->get());
      return removed + 1;
    }

    default:
      return removed;
  }
}

size_t SimplifyScalar(Scalar* scalar, SimplifyCtx* ctx) {
  size_t removed = 0;
  if (scalar->kind == ScalarKind::kNested) {
    removed += SimplifyNode(&scalar->plan, ctx);
    if (!ctx->status.ok()) return removed;
    PlanProperties plan_props =
        analysis::InferPlanProperties(*scalar->plan);
    if (plan_props.cardinality == Cardinality::kEmpty) {
      // The nested sequence is provably empty: fold the aggregate.
      const char* rule = "fold-empty-nested-aggregate";
      LogRewrite(ctx, rule,
                 std::string("nested ") + AggKindName(scalar->agg) + "(" +
                     scalar->input_attr + ")",
                 analysis::RenderProperties(plan_props, ""));
      removed += PlanSize(*scalar->plan);
      AggKind agg = scalar->agg;
      scalar->plan.reset();
      scalar->children.clear();
      scalar->input_attr.clear();
      switch (agg) {
        case AggKind::kExists:
          scalar->kind = ScalarKind::kBoolConst;
          scalar->boolean = false;
          break;
        case AggKind::kCount:
        case AggKind::kSum:
          scalar->kind = ScalarKind::kNumberConst;
          scalar->number = 0;
          break;
        case AggKind::kMax:
        case AggKind::kMin:
          scalar->kind = ScalarKind::kNumberConst;
          scalar->number = std::numeric_limits<double>::quiet_NaN();
          break;
        case AggKind::kFirstString:
        case AggKind::kFirstName:
        case AggKind::kFirstLocalName:
          scalar->kind = ScalarKind::kStringConst;
          scalar->string_value.clear();
          break;
      }
      CheckAfterRule(ctx, rule, nullptr, nullptr);
      return removed;
    }
  }
  for (ScalarPtr& child : scalar->children) {
    removed += SimplifyScalar(child.get(), ctx);
    if (!ctx->status.ok()) return removed;
  }
  return removed;
}

}  // namespace

size_t SimplifyPlan(OpPtr* plan, RewriteLog* log) {
  obs::ScopedSpan span("compile/rewrite");
  SimplifyCtx ctx;
  ctx.root = plan;
  ctx.log = log;
  return SimplifyNode(plan, &ctx);
}

StatusOr<size_t> SimplifyPlanChecked(OpPtr* plan, RewriteLog* log) {
  obs::ScopedSpan span("compile/rewrite");
  SimplifyCtx ctx;
  ctx.root = plan;
  ctx.log = log;
  ctx.verify = analysis::VerificationEnabled();
  if (ctx.verify) {
    // Whatever the plan legitimately read from its context before
    // rewriting stays legitimate afterwards; rewrites must not introduce
    // new free attributes.
    ctx.outer = analysis::ExecutionContextAttributes();
    std::set<std::string> free = FreeAttributes(**plan);
    ctx.outer.insert(free.begin(), free.end());
  }
  size_t removed = SimplifyNode(plan, &ctx);
  NATIX_RETURN_IF_ERROR(ctx.status);
  return removed;
}

}  // namespace natix::algebra
