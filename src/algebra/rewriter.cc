#include "algebra/rewriter.h"

#include "algebra/properties.h"
#include "analysis/plan_verifier.h"
#include "obs/trace.h"
#include "runtime/node_ops.h"

namespace natix::algebra {

namespace {

/// Axes that map distinct context nodes to disjoint, duplicate-free
/// result sets: child and attribute (disjoint per parent) and self.
bool AxisPreservesDistinctness(runtime::Axis axis) {
  switch (axis) {
    case runtime::Axis::kChild:
    case runtime::Axis::kAttribute:
    case runtime::Axis::kSelf:
      return true;
    default:
      return false;
  }
}

}  // namespace

SequenceProperties InferProperties(const Operator& op) {
  SequenceProperties props;
  switch (op.kind) {
    case OpKind::kSingletonScan:
      props.singleton = true;
      return props;

    case OpKind::kMap: {
      props = InferProperties(*op.children[0]);
      // A mapped value may repeat across tuples; only a singleton
      // sequence makes the new attribute trivially duplicate-free.
      if (props.singleton) props.duplicate_free.insert(op.attr);
      // A freshly mapped node attribute has unknown order/nesting.
      props.ordered_by.erase(op.attr);
      props.non_nested.erase(op.attr);
      return props;
    }
    case OpKind::kCounter:
      props = InferProperties(*op.children[0]);
      // Counter values restart per context boundary, so they may repeat;
      // without a reset attribute they count the whole sequence 1..n.
      if (props.singleton || op.ctx_attr.empty()) {
        props.duplicate_free.insert(op.attr);
      }
      return props;
    case OpKind::kTmpCs:
      props = InferProperties(*op.children[0]);
      if (props.singleton) props.duplicate_free.insert(op.attr);
      return props;

    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kMemoX:
      // Subsets / replays preserve every property.
      return InferProperties(*op.children[0]);

    case OpKind::kSort:
      props = InferProperties(*op.children[0]);
      props.ordered_by.insert(op.attr);
      return props;

    case OpKind::kDupElim:
      props = InferProperties(*op.children[0]);
      props.duplicate_free.insert(op.attr);
      return props;

    case OpKind::kUnnestMap: {
      SequenceProperties input = InferProperties(*op.children[0]);
      // The context is duplicate-free when the input says so, or when it
      // is a free variable over a singleton input (one fixed context per
      // evaluation — the canonical dependent subexpression).
      bool ctx_dup_free =
          input.duplicate_free.count(op.ctx_attr) > 0 || input.singleton;
      if (ctx_dup_free && AxisPreservesDistinctness(op.axis)) {
        props.duplicate_free.insert(op.attr);
      }
      // Order and nesting inference. The axis cursor emits each
      // context's results in axis order; forward axes in document order.
      bool ctx_ordered =
          input.singleton || input.ordered_by.count(op.ctx_attr) > 0;
      bool ctx_non_nested =
          input.singleton || input.non_nested.count(op.ctx_attr) > 0;
      switch (op.axis) {
        case runtime::Axis::kSelf:
          if (ctx_ordered) props.ordered_by.insert(op.attr);
          if (ctx_non_nested) props.non_nested.insert(op.attr);
          break;
        case runtime::Axis::kAttribute:
          // Attributes sit directly after their element and before its
          // children: groups of ordered contexts never interleave, and
          // attributes are never ancestors of anything.
          if (ctx_ordered) props.ordered_by.insert(op.attr);
          props.non_nested.insert(op.attr);
          break;
        case runtime::Axis::kChild:
          // Children of pairwise non-nested, ordered contexts occupy
          // disjoint, ordered subtree ranges — and stay non-nested.
          if (ctx_ordered && ctx_non_nested) {
            props.ordered_by.insert(op.attr);
            props.non_nested.insert(op.attr);
          }
          break;
        case runtime::Axis::kDescendant:
        case runtime::Axis::kDescendantOrSelf:
          // Disjoint subtree ranges again, but the output values nest.
          if (ctx_ordered && ctx_non_nested) {
            props.ordered_by.insert(op.attr);
          }
          break;
        default:
          break;  // reverse axes / following: no order claims
      }
      return props;
    }

    case OpKind::kDJoin:
    case OpKind::kCross: {
      SequenceProperties left = InferProperties(*op.children[0]);
      SequenceProperties right = InferProperties(*op.children[1]);
      if (left.singleton) {
        props = right;
        props.singleton = left.singleton && right.singleton;
        return props;
      }
      if (right.singleton) {
        // At most one right tuple per left tuple: left attributes keep
        // their distinctness; the right attribute's values may repeat.
        props.duplicate_free = left.duplicate_free;
        return props;
      }
      return props;
    }

    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
      // A subset of the left sequence.
      return InferProperties(*op.children[0]);

    case OpKind::kAggregate:
      props.singleton = true;
      props.duplicate_free.insert(op.attr);
      return props;

    case OpKind::kBinaryGroup:
      props = InferProperties(*op.children[0]);
      if (props.singleton) props.duplicate_free.insert(op.attr);
      return props;

    case OpKind::kConcat:
    case OpKind::kUnnest:
    case OpKind::kIdDeref:
      // Unknown overlap / multiplicity: nothing can be promised.
      return props;
  }
  return props;
}

namespace {

/// Rewrite session state: the plan root (for whole-plan re-verification
/// after each rule), the attributes the plan may legitimately read from
/// its context, and the first verification failure (which stops further
/// rewriting and names the rule that caused it).
struct SimplifyCtx {
  const OpPtr* root = nullptr;
  bool verify = false;
  std::set<std::string> outer;
  Status status;
};

/// Re-verifies the whole plan after `rule` fired.
void CheckAfterRule(SimplifyCtx* ctx, const char* rule) {
  if (!ctx->verify || !ctx->status.ok()) return;
  Status st = analysis::VerifyLogicalPlan(**ctx->root, ctx->outer);
  if (!st.ok()) {
    ctx->status = Status::Internal(
        std::string("rewrite rule '") + rule +
        "' produced a malformed plan: " + st.message());
  }
}

size_t SimplifyScalar(Scalar* scalar, SimplifyCtx* ctx);

size_t SimplifyNode(OpPtr* slot, SimplifyCtx* ctx) {
  if (!ctx->status.ok()) return 0;
  size_t removed = 0;
  Operator* op = slot->get();

  // Bottom-up.
  for (OpPtr& child : op->children) removed += SimplifyNode(&child, ctx);
  if (op->scalar != nullptr) {
    removed += SimplifyScalar(op->scalar.get(), ctx);
  }
  if (!ctx->status.ok()) return removed;

  if (op->kind == OpKind::kSelect &&
      op->scalar->kind == ScalarKind::kBoolConst && op->scalar->boolean) {
    *slot = std::move(op->children[0]);
    CheckAfterRule(ctx, "drop-constant-true-selection");
    return removed + 1;
  }
  if (op->kind == OpKind::kDupElim) {
    SequenceProperties props = InferProperties(*op->children[0]);
    if (props.singleton || props.duplicate_free.count(op->attr) > 0) {
      *slot = std::move(op->children[0]);
      CheckAfterRule(ctx, "drop-redundant-duplicate-elimination");
      return removed + 1;
    }
  }
  if (op->kind == OpKind::kSort) {
    SequenceProperties props = InferProperties(*op->children[0]);
    if (props.singleton || props.ordered_by.count(op->attr) > 0) {
      *slot = std::move(op->children[0]);
      CheckAfterRule(ctx, "drop-redundant-sort");
      return removed + 1;
    }
  }
  return removed;
}

size_t SimplifyScalar(Scalar* scalar, SimplifyCtx* ctx) {
  size_t removed = 0;
  if (scalar->kind == ScalarKind::kNested) {
    removed += SimplifyNode(&scalar->plan, ctx);
  }
  for (ScalarPtr& child : scalar->children) {
    removed += SimplifyScalar(child.get(), ctx);
  }
  return removed;
}

}  // namespace

size_t SimplifyPlan(OpPtr* plan) {
  obs::ScopedSpan span("compile/rewrite");
  SimplifyCtx ctx;
  ctx.root = plan;
  return SimplifyNode(plan, &ctx);
}

StatusOr<size_t> SimplifyPlanChecked(OpPtr* plan) {
  obs::ScopedSpan span("compile/rewrite");
  SimplifyCtx ctx;
  ctx.root = plan;
  ctx.verify = analysis::VerificationEnabled();
  if (ctx.verify) {
    // Whatever the plan legitimately read from its context before
    // rewriting stays legitimate afterwards; rewrites must not introduce
    // new free attributes.
    ctx.outer = analysis::ExecutionContextAttributes();
    std::set<std::string> free = FreeAttributes(**plan);
    ctx.outer.insert(free.begin(), free.end());
  }
  size_t removed = SimplifyNode(plan, &ctx);
  NATIX_RETURN_IF_ERROR(ctx.status);
  return removed;
}

}  // namespace natix::algebra
