#include "algebra/rewriter.h"

#include <cmath>
#include <limits>
#include <utility>

#include "algebra/properties.h"
#include "analysis/plan_verifier.h"
#include "analysis/property_inference.h"
#include "obs/trace.h"
#include "runtime/node_ops.h"

namespace natix::algebra {

using analysis::Cardinality;
using analysis::OrderState;
using analysis::PlanProperties;

SequenceProperties InferProperties(const Operator& op) {
  PlanProperties inferred = analysis::InferPlanProperties(op);
  SequenceProperties props;
  props.singleton = inferred.AtMostOne();
  for (const auto& [name, attr] : inferred.attrs) {
    if (attr.duplicate_free) props.duplicate_free.insert(name);
    if (attr.order == OrderState::kDocOrdered) props.ordered_by.insert(name);
    if (attr.non_nested) props.non_nested.insert(name);
  }
  return props;
}

namespace {

/// Rewrite session state: the plan root (for whole-plan re-verification
/// after each rule), the attributes the plan may legitimately read from
/// its context, the rewrite log, and the first verification failure
/// (which stops further rewriting and names the rule that caused it).
struct SimplifyCtx {
  const OpPtr* root = nullptr;
  bool verify = false;
  bool limit_pushdown = true;
  std::set<std::string> outer;
  RewriteLog* log = nullptr;
  Status status;
};

/// Records one rule application with its proving property.
void LogRewrite(SimplifyCtx* ctx, const char* rule, std::string target,
                std::string justification) {
  if (ctx->log == nullptr) return;
  ctx->log->push_back(RewriteEvent{std::string(rule), std::move(target),
                                   std::move(justification)});
}

/// Re-verifies the plan after `rule` fired: Layer 1 (well-formedness of
/// the whole plan) and, when `before`/`after` are given, Layer 1.5
/// (the rewritten subtree's inferred properties must not weaken).
void CheckAfterRule(SimplifyCtx* ctx, const char* rule,
                    const PlanProperties* before, const Operator* after) {
  if (!ctx->verify || !ctx->status.ok()) return;
  Status st = analysis::VerifyLogicalPlan(**ctx->root, ctx->outer);
  if (!st.ok()) {
    ctx->status = Status::Internal(
        std::string("rewrite rule '") + rule +
        "' produced a malformed plan: " + st.message());
    return;
  }
  if (before != nullptr && after != nullptr) {
    ctx->status = analysis::CheckPropertyPreservation(
        *before, analysis::InferPlanProperties(*after), rule);
  }
}

size_t SimplifyScalar(Scalar* scalar, SimplifyCtx* ctx);

/// Replaces the operator in `slot` by its child at `child_index`,
/// running the Layer-1/1.5 checks. Returns the number of operators that
/// disappeared (the node itself plus any sibling subtrees).
size_t ReplaceByChild(OpPtr* slot, size_t child_index, SimplifyCtx* ctx,
                      const char* rule, std::string justification) {
  Operator* op = slot->get();
  PlanProperties before = analysis::InferPlanProperties(*op);
  size_t dropped = PlanSize(*op) - PlanSize(*op->children[child_index]);
  LogRewrite(ctx, rule, analysis::OperatorSummary(*op),
             std::move(justification));
  *slot = std::move(op->children[child_index]);
  CheckAfterRule(ctx, rule, &before, slot->get());
  return dropped;
}

/// Whether `op` binds `attr` as a stream attribute.
bool BindsAttr(const Operator& op, const std::string& attr) {
  switch (op.kind) {
    case OpKind::kMap:
    case OpKind::kCounter:
    case OpKind::kUnnestMap:
    case OpKind::kUnnest:
    case OpKind::kAggregate:
    case OpKind::kBinaryGroup:
    case OpKind::kTmpCs:
    case OpKind::kIdDeref:
      return op.attr == attr;
    default:
      return false;
  }
}

/// The operator in `op`'s subtree binding `attr`, or null when the
/// attribute is free there (bound outside, e.g. by a dependent join's
/// left branch or the execution context).
const Operator* FindBinder(const Operator& op, const std::string& attr) {
  if (BindsAttr(op, attr)) return &op;
  for (const OpPtr& child : op.children) {
    if (const Operator* found = FindBinder(*child, attr)) return found;
  }
  return nullptr;
}

/// Descends through operators that merely decorate or replay their
/// input stream to the operator that produced the node sequence a
/// positional predicate counts over.
const Operator* FocusProducer(const Operator* op) {
  while (op->kind == OpKind::kSelect || op->kind == OpKind::kCounter ||
         op->kind == OpKind::kTmpCs || op->kind == OpKind::kLimit ||
         op->kind == OpKind::kMap || op->kind == OpKind::kProject ||
         op->kind == OpKind::kMemoX) {
    op = op->children[0].get();
  }
  return op;
}

/// The node-stream attribute `op` produces, when it is a producer the
/// positional rewrite can reason about.
std::string ProducerAttr(const Operator& op) {
  switch (op.kind) {
    case OpKind::kUnnestMap:
    case OpKind::kUnnest:
    case OpKind::kIdDeref:
    case OpKind::kDupElim:
    case OpKind::kSort:
      return op.attr;
    default:
      return std::string();
  }
}

/// Positional early exit (the whole-query analogue of the smart
/// aggregation exit): `Select[cp θ k]` directly above the `Counter`
/// binding cp cannot qualify any tuple past the k-th, so the stream may
/// be capped with `Limit` — closing the pipeline, including the page
/// scan feeding it, as soon as the bound is reached. Fires only when
///  * θ is =, < or <= against a positive integer literal (sema turned
///    numeric predicates like [3] into `position() = 3` already; a
///    Tmp^cs between the selection and the counter means the predicate
///    depends on last() and needs the whole stream),
///  * the counter provably numbers the whole stream: it has no reset
///    boundary, or the boundary attribute is constant per evaluation
///    (free), or its binder is a provably <=1-tuple stream — otherwise
///    position() restarts per context group and a global cap is wrong,
///  * property inference proves the positioned stream doc-ordered and
///    duplicate-free (so "the k-th tuple" is a well-defined prefix of
///    the one true document-order enumeration; reverse axes, which
///    enumerate in reverse order, fail this and must not fire).
/// The inserted Limit is then pushed below non-blocking 1:1 operators
/// (counter, χ, Π) so it sits directly on the producing scan.
void TryLimitPushdown(OpPtr* slot, SimplifyCtx* ctx) {
  Operator* select = slot->get();
  const Scalar& pred = *select->scalar;
  if (pred.kind != ScalarKind::kCompare || pred.children.size() != 2) return;
  const Scalar* attr_side = pred.children[0].get();
  const Scalar* const_side = pred.children[1].get();
  runtime::CompareOp cmp = pred.cmp;
  if (attr_side->kind == ScalarKind::kNumberConst &&
      const_side->kind == ScalarKind::kAttrRef) {
    // Mirrored orientation (`3 >= position()`): flip the comparison.
    std::swap(attr_side, const_side);
    switch (cmp) {
      case runtime::CompareOp::kLt:
        cmp = runtime::CompareOp::kGt;
        break;
      case runtime::CompareOp::kLe:
        cmp = runtime::CompareOp::kGe;
        break;
      case runtime::CompareOp::kGt:
        cmp = runtime::CompareOp::kLt;
        break;
      case runtime::CompareOp::kGe:
        cmp = runtime::CompareOp::kLe;
        break;
      default:
        break;
    }
  }
  if (attr_side->kind != ScalarKind::kAttrRef ||
      const_side->kind != ScalarKind::kNumberConst) {
    return;
  }
  double k = const_side->number;
  // The bound must be a positive integer: fractional or out-of-range
  // positions make the predicate statically false (or effectively
  // unbounded) and are left to other machinery.
  if (!(k >= 1) || k != std::floor(k) || k > 1e15) return;
  uint64_t bound = 0;
  switch (cmp) {
    case runtime::CompareOp::kEq:
    case runtime::CompareOp::kLe:
      bound = static_cast<uint64_t>(k);
      break;
    case runtime::CompareOp::kLt:
      if (k < 2) return;  // position() < 1: statically false, leave it
      bound = static_cast<uint64_t>(k) - 1;
      break;
    default:
      return;  // >, >=, != qualify tuples arbitrarily late
  }

  Operator* counter = select->children[0].get();
  if (counter->kind != OpKind::kCounter || counter->attr != attr_side->name) {
    return;
  }
  // Idempotence: a matching (or tighter) cap is already in place.
  if (counter->children[0]->kind == OpKind::kLimit &&
      counter->children[0]->limit <= bound) {
    return;
  }

  // Whole-stream counting.
  const Operator& input = *counter->children[0];
  std::string boundary_fact;
  if (counter->ctx_attr.empty()) {
    boundary_fact = "counter numbers the whole stream";
  } else if (const Operator* binder = FindBinder(input, counter->ctx_attr)) {
    PlanProperties binder_props = analysis::InferPlanProperties(*binder);
    if (!binder_props.AtMostOne()) return;
    boundary_fact = "reset boundary '" + counter->ctx_attr +
                    "' bound by a card:" +
                    analysis::CardinalityName(binder_props.cardinality) +
                    " stream";
  } else {
    // Free attribute: one fixed value per evaluation of this plan (the
    // dependent-join contract), so the counter never actually resets.
    boundary_fact =
        "reset attribute '" + counter->ctx_attr + "' is constant per evaluation";
  }

  // Doc order and duplicate-freedom of the positioned stream.
  const Operator* producer = FocusProducer(counter->children[0].get());
  std::string stream_attr = ProducerAttr(*producer);
  if (stream_attr.empty()) return;
  PlanProperties in = analysis::InferPlanProperties(*counter->children[0]);
  analysis::AttrProperties stream = in.Lookup(stream_attr);
  if (stream.order != OrderState::kDocOrdered || !stream.duplicate_free) {
    return;
  }

  PlanProperties before = analysis::InferPlanProperties(*select);
  const char* rule = "limit:positional-pushdown";
  LogRewrite(ctx, rule, analysis::OperatorSummary(*select),
             analysis::RenderProperties(in, stream_attr) + "; " +
                 boundary_fact);
  OpPtr lim = MakeOp(OpKind::kLimit);
  lim->limit = bound;
  lim->children.push_back(std::move(select->children[0]));
  select->children[0] = std::move(lim);
  CheckAfterRule(ctx, rule, &before, slot->get());
  if (!ctx->status.ok()) return;

  // Push the cap below non-blocking 1:1 operators: a prefix of a
  // tuple-preserving operator's output is that operator applied to the
  // same prefix of its input. Stops at expanding (Υ, μ), filtering
  // (σ, Π^D) or blocking (Sort, Tmp^cs) operators.
  OpPtr* lim_slot = &select->children[0];
  while (ctx->status.ok()) {
    Operator* l = lim_slot->get();
    OpKind below = l->children[0]->kind;
    const char* push_rule = nullptr;
    if (below == OpKind::kCounter) {
      push_rule = "limit:push-below-counter";
    } else if (below == OpKind::kMap) {
      push_rule = "limit:push-below-map";
    } else if (below == OpKind::kProject) {
      push_rule = "limit:push-below-project";
    } else {
      break;
    }
    PlanProperties rot_before = analysis::InferPlanProperties(*l);
    LogRewrite(ctx, push_rule, analysis::OperatorSummary(*l->children[0]),
               "prefix commutes with a 1:1 operator");
    OpPtr limit_node = std::move(*lim_slot);
    OpPtr carrier = std::move(limit_node->children[0]);
    limit_node->children[0] = std::move(carrier->children[0]);
    carrier->children[0] = std::move(limit_node);
    *lim_slot = std::move(carrier);
    CheckAfterRule(ctx, push_rule, &rot_before, lim_slot->get());
    lim_slot = &(*lim_slot)->children[0];
  }
}

size_t SimplifyNode(OpPtr* slot, SimplifyCtx* ctx) {
  if (!ctx->status.ok()) return 0;
  size_t removed = 0;
  Operator* op = slot->get();

  // Bottom-up.
  for (OpPtr& child : op->children) removed += SimplifyNode(&child, ctx);
  if (op->scalar != nullptr) {
    removed += SimplifyScalar(op->scalar.get(), ctx);
  }
  if (!ctx->status.ok()) return removed;

  switch (op->kind) {
    case OpKind::kSelect: {
      if (op->scalar->kind == ScalarKind::kBoolConst) {
        if (op->scalar->boolean) {
          return removed + ReplaceByChild(
                               slot, 0, ctx, "drop-constant-true-selection",
                               "constant-true predicate");
        }
        // A constant-false selection IS the plan's statically-empty
        // marker; parents prune against it.
        return removed;
      }
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      if (child.cardinality == Cardinality::kEmpty) {
        return removed + ReplaceByChild(
                             slot, 0, ctx, "drop-selection-on-empty-input",
                             analysis::RenderProperties(child, ""));
      }
      if (ctx->limit_pushdown) TryLimitPushdown(slot, ctx);
      return removed;
    }

    case OpKind::kUnnestMap: {
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      analysis::NodeClass cls = child.Lookup(op->ctx_attr).node_class;
      if (child.cardinality != Cardinality::kEmpty &&
          !analysis::StaticallyEmptyStep(cls, op->axis, op->test)) {
        return removed;
      }
      // No tuple can ever emerge (empty input, or an axis/node-test
      // combination that is empty for the context's static node class,
      // e.g. children of an attribute). Replace the navigation by the
      // canonical statically-empty marker: the child stays — dependent
      // consumers may still reference its bindings — gated by a
      // constant-false selection, and the output attribute becomes a
      // never-evaluated constant.
      PlanProperties before = analysis::InferPlanProperties(*op);
      LogRewrite(ctx, "replace-statically-empty-step",
                 analysis::OperatorSummary(*op),
                 analysis::RenderProperties(child, op->ctx_attr));
      OpPtr select = MakeOp(OpKind::kSelect);
      select->scalar = MakeScalar(ScalarKind::kBoolConst);
      select->scalar->boolean = false;
      select->children.push_back(std::move(op->children[0]));
      OpPtr marker = MakeOp(OpKind::kMap);
      marker->attr = op->attr;
      marker->scalar = MakeScalar(ScalarKind::kNumberConst);
      marker->scalar->number = 0;
      marker->children.push_back(std::move(select));
      *slot = std::move(marker);
      CheckAfterRule(ctx, "replace-statically-empty-step", &before,
                     slot->get());
      return removed + 1;
    }

    case OpKind::kDupElim: {
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      if (child.Lookup(op->attr).duplicate_free) {
        return removed +
               ReplaceByChild(
                   slot, 0, ctx, "drop-redundant-duplicate-elimination",
                   analysis::RenderProperties(child, op->attr));
      }
      return removed;
    }

    case OpKind::kSort: {
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      analysis::AttrProperties attr = child.Lookup(op->attr);
      // Document order must be established and unambiguous: with
      // duplicate sort keys the (unstable) sort may permute payload
      // tuples that share a key.
      if (attr.order == OrderState::kDocOrdered && attr.duplicate_free) {
        return removed + ReplaceByChild(
                             slot, 0, ctx, "drop-redundant-sort",
                             analysis::RenderProperties(child, op->attr));
      }
      return removed;
    }

    case OpKind::kConcat: {
      // Prune statically-empty branches; they contribute no tuples.
      for (size_t i = 0; i < op->children.size() && op->children.size() > 1;) {
        PlanProperties branch =
            analysis::InferPlanProperties(*op->children[i]);
        if (branch.cardinality == Cardinality::kEmpty) {
          removed += PlanSize(*op->children[i]);
          LogRewrite(ctx, "prune-empty-concat-branch",
                     analysis::OperatorSummary(*op->children[i]),
                     analysis::RenderProperties(branch, ""));
          op->children.erase(op->children.begin() +
                             static_cast<ptrdiff_t>(i));
          CheckAfterRule(ctx, "prune-empty-concat-branch", nullptr, nullptr);
          if (!ctx->status.ok()) return removed;
        } else {
          ++i;
        }
      }
      if (op->children.size() == 1) {
        return removed + ReplaceByChild(slot, 0, ctx,
                                        "collapse-single-branch-concat",
                                        "single remaining branch");
      }
      return removed;
    }

    case OpKind::kAntiJoin: {
      PlanProperties right = analysis::InferPlanProperties(*op->children[1]);
      if (right.cardinality == Cardinality::kEmpty) {
        // No right tuple can ever match: the anti join is the identity.
        return removed + ReplaceByChild(
                             slot, 0, ctx, "drop-antijoin-with-empty-right",
                             analysis::RenderProperties(right, ""));
      }
      return removed;
    }

    case OpKind::kSemiJoin: {
      PlanProperties right = analysis::InferPlanProperties(*op->children[1]);
      if (right.cardinality == Cardinality::kEmpty) {
        // No right tuple can ever match: nothing qualifies. Keep the
        // left subtree (its attributes stay bound) under a constant-
        // false selection — the statically-empty marker.
        PlanProperties before = analysis::InferPlanProperties(*op);
        size_t dropped = PlanSize(*op->children[1]);
        LogRewrite(ctx, "empty-semijoin-to-false-selection",
                   analysis::OperatorSummary(*op),
                   analysis::RenderProperties(right, ""));
        OpPtr select = MakeOp(OpKind::kSelect);
        select->scalar = MakeScalar(ScalarKind::kBoolConst);
        select->scalar->boolean = false;
        select->children.push_back(std::move(op->children[0]));
        *slot = std::move(select);
        CheckAfterRule(ctx, "empty-semijoin-to-false-selection", &before,
                       slot->get());
        return removed + dropped;
      }
      return removed;
    }

    case OpKind::kTmpCs: {
      if (!op->ctx_attr.empty()) return removed;
      PlanProperties child = analysis::InferPlanProperties(*op->children[0]);
      if (!child.AtMostOne()) return removed;
      // At most one input tuple means one group of size one (or no
      // output at all): cs is the constant 1, no materialization needed.
      PlanProperties before = analysis::InferPlanProperties(*op);
      LogRewrite(ctx, "replace-singleton-tmpcs",
                 analysis::OperatorSummary(*op),
                 analysis::RenderProperties(child, ""));
      OpPtr map = MakeOp(OpKind::kMap);
      map->attr = op->attr;
      map->scalar = MakeScalar(ScalarKind::kNumberConst);
      map->scalar->number = 1;
      map->children.push_back(std::move(op->children[0]));
      *slot = std::move(map);
      CheckAfterRule(ctx, "replace-singleton-tmpcs", &before, slot->get());
      return removed + 1;
    }

    default:
      return removed;
  }
}

size_t SimplifyScalar(Scalar* scalar, SimplifyCtx* ctx) {
  size_t removed = 0;
  if (scalar->kind == ScalarKind::kNested) {
    removed += SimplifyNode(&scalar->plan, ctx);
    if (!ctx->status.ok()) return removed;
    PlanProperties plan_props =
        analysis::InferPlanProperties(*scalar->plan);
    if (plan_props.cardinality == Cardinality::kEmpty) {
      // The nested sequence is provably empty: fold the aggregate.
      const char* rule = "fold-empty-nested-aggregate";
      LogRewrite(ctx, rule,
                 std::string("nested ") + AggKindName(scalar->agg) + "(" +
                     scalar->input_attr + ")",
                 analysis::RenderProperties(plan_props, ""));
      removed += PlanSize(*scalar->plan);
      AggKind agg = scalar->agg;
      scalar->plan.reset();
      scalar->children.clear();
      scalar->input_attr.clear();
      switch (agg) {
        case AggKind::kExists:
          scalar->kind = ScalarKind::kBoolConst;
          scalar->boolean = false;
          break;
        case AggKind::kCount:
        case AggKind::kSum:
          scalar->kind = ScalarKind::kNumberConst;
          scalar->number = 0;
          break;
        case AggKind::kMax:
        case AggKind::kMin:
          scalar->kind = ScalarKind::kNumberConst;
          scalar->number = std::numeric_limits<double>::quiet_NaN();
          break;
        case AggKind::kFirstString:
        case AggKind::kFirstName:
        case AggKind::kFirstLocalName:
          scalar->kind = ScalarKind::kStringConst;
          scalar->string_value.clear();
          break;
      }
      CheckAfterRule(ctx, rule, nullptr, nullptr);
      return removed;
    }
  }
  for (ScalarPtr& child : scalar->children) {
    removed += SimplifyScalar(child.get(), ctx);
    if (!ctx->status.ok()) return removed;
  }
  return removed;
}

}  // namespace

size_t SimplifyPlan(OpPtr* plan, RewriteLog* log, bool limit_pushdown) {
  obs::ScopedSpan span("compile/rewrite");
  SimplifyCtx ctx;
  ctx.root = plan;
  ctx.log = log;
  ctx.limit_pushdown = limit_pushdown;
  return SimplifyNode(plan, &ctx);
}

StatusOr<size_t> SimplifyPlanChecked(OpPtr* plan, RewriteLog* log,
                                     bool limit_pushdown) {
  obs::ScopedSpan span("compile/rewrite");
  SimplifyCtx ctx;
  ctx.root = plan;
  ctx.log = log;
  ctx.limit_pushdown = limit_pushdown;
  ctx.verify = analysis::VerificationEnabled();
  if (ctx.verify) {
    // Whatever the plan legitimately read from its context before
    // rewriting stays legitimate afterwards; rewrites must not introduce
    // new free attributes.
    ctx.outer = analysis::ExecutionContextAttributes();
    std::set<std::string> free = FreeAttributes(**plan);
    ctx.outer.insert(free.begin(), free.end());
  }
  size_t removed = SimplifyNode(plan, &ctx);
  NATIX_RETURN_IF_ERROR(ctx.status);
  return removed;
}

}  // namespace natix::algebra
