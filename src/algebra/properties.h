#ifndef NATIX_ALGEBRA_PROPERTIES_H_
#define NATIX_ALGEBRA_PROPERTIES_H_

#include <set>
#include <string>

#include "algebra/operator.h"

namespace natix::algebra {

/// Attributes written (bound) by the plan rooted at `op`, including those
/// of nested d-join branches.
std::set<std::string> WrittenAttributes(const Operator& op);

/// Attributes referenced by the plan (or its subscripts) that are not
/// bound within it — the free variables of a dependent expression. For a
/// well-formed top-level plan this is empty or {"cn"} plus $-variables
/// are not included (they come from the execution context).
std::set<std::string> FreeAttributes(const Operator& op);

/// Number of operator nodes (plan size; used by tests and ablations).
size_t PlanSize(const Operator& op);

/// Attribute names a scalar subscript depends on: its attribute
/// references plus the free attributes of any nested plans. Used by the
/// code generator to key chi^mat and MemoX caches.
std::set<std::string> ScalarFreeAttributes(const Scalar& scalar);

}  // namespace natix::algebra

#endif  // NATIX_ALGEBRA_PROPERTIES_H_
