#include "algebra/operator.h"

#include "base/xpath_number.h"

namespace natix::algebra {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSingletonScan:
      return "SingletonScan";
    case OpKind::kSelect:
      return "Select";
    case OpKind::kMap:
      return "Map";
    case OpKind::kCounter:
      return "Counter";
    case OpKind::kUnnestMap:
      return "UnnestMap";
    case OpKind::kDJoin:
      return "DJoin";
    case OpKind::kCross:
      return "Cross";
    case OpKind::kSemiJoin:
      return "SemiJoin";
    case OpKind::kAntiJoin:
      return "AntiJoin";
    case OpKind::kUnnest:
      return "Unnest";
    case OpKind::kConcat:
      return "Concat";
    case OpKind::kDupElim:
      return "DupElim";
    case OpKind::kProject:
      return "Project";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kAggregate:
      return "Aggregate";
    case OpKind::kBinaryGroup:
      return "BinaryGroup";
    case OpKind::kTmpCs:
      return "TmpCs";
    case OpKind::kMemoX:
      return "MemoX";
    case OpKind::kIdDeref:
      return "IdDeref";
    case OpKind::kLimit:
      return "Limit";
  }
  return "?";
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kExists:
      return "exists";
    case AggKind::kMax:
      return "max";
    case AggKind::kMin:
      return "min";
    case AggKind::kFirstString:
      return "first-string";
    case AggKind::kFirstName:
      return "first-name";
    case AggKind::kFirstLocalName:
      return "first-local-name";
  }
  return "?";
}

std::string Scalar::ToString() const {
  switch (kind) {
    case ScalarKind::kNumberConst:
      return XPathNumberToString(number);
    case ScalarKind::kStringConst:
      return "'" + string_value + "'";
    case ScalarKind::kBoolConst:
      return boolean ? "true" : "false";
    case ScalarKind::kAttrRef:
      return name;
    case ScalarKind::kVarRef:
      return "$" + name;
    case ScalarKind::kArith:
      return "(" + children[0]->ToString() + " " + xpath::BinaryOpName(op) +
             " " + children[1]->ToString() + ")";
    case ScalarKind::kNegate:
      return "-(" + children[0]->ToString() + ")";
    case ScalarKind::kLogical:
      return "(" + children[0]->ToString() + " " + xpath::BinaryOpName(op) +
             " " + children[1]->ToString() + ")";
    case ScalarKind::kCompare:
      return "(" + children[0]->ToString() + " " +
             runtime::CompareOpName(cmp) + " " + children[1]->ToString() +
             ")";
    case ScalarKind::kFunc: {
      std::string out =
          std::string(xpath::FunctionInfoFor(function).name) + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ScalarKind::kNested:
      return std::string(AggKindName(agg)) + "{" + input_attr + ": <plan>}";
  }
  return "?";
}

namespace {

void Indent(std::string* out, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

void PrintScalarPlans(const Scalar& scalar, int depth, std::string* out);

void PrintOp(const Operator& op, int depth, std::string* out) {
  Indent(out, depth);
  *out += OpKindName(op.kind);
  switch (op.kind) {
    case OpKind::kSelect:
    case OpKind::kSemiJoin:
    case OpKind::kAntiJoin:
      *out += "[" + op.scalar->ToString() + "]";
      break;
    case OpKind::kMap:
      *out += std::string(op.materialize ? "^mat" : "") + "[" + op.attr +
              " := " + op.scalar->ToString() + "]";
      break;
    case OpKind::kCounter:
      *out += "[" + op.attr + " := counter++" +
              (op.ctx_attr.empty() ? "" : ", reset on " + op.ctx_attr) + "]";
      break;
    case OpKind::kUnnestMap:
      *out += "[" + op.attr + " := " + op.ctx_attr + "/" +
              runtime::AxisName(op.axis) + "::" + op.test.ToString() + "]";
      break;
    case OpKind::kDupElim:
    case OpKind::kSort:
      *out += "[" + op.attr + "]";
      break;
    case OpKind::kProject: {
      *out += "[";
      for (size_t i = 0; i < op.attrs.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += op.attrs[i];
      }
      *out += "]";
      break;
    }
    case OpKind::kAggregate:
      *out += "[" + op.attr + " := " + AggKindName(op.agg) + "(" +
              op.ctx_attr + ")]";
      break;
    case OpKind::kBinaryGroup:
      *out += "[" + op.attr + " := " + AggKindName(op.agg) + "; " +
              op.left_attr + " = " + op.right_attr + "]";
      break;
    case OpKind::kTmpCs:
      *out += "[" + op.attr +
              (op.ctx_attr.empty() ? "" : "; context " + op.ctx_attr) + "]";
      break;
    case OpKind::kMemoX: {
      *out += "[";
      for (size_t i = 0; i < op.key_attrs.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += op.key_attrs[i];
      }
      *out += "]";
      break;
    }
    case OpKind::kUnnest:
      *out += "[" + op.attr + " := unnest " + op.ctx_attr + "]";
      break;
    case OpKind::kIdDeref:
      *out += "[" + op.attr + " := deref " +
              (op.scalar != nullptr ? op.scalar->ToString() : op.ctx_attr) +
              "]";
      break;
    case OpKind::kLimit:
      *out += "[" + std::to_string(op.limit) + "]";
      break;
    default:
      break;
  }
  *out += "\n";
  if (op.scalar != nullptr) PrintScalarPlans(*op.scalar, depth + 1, out);
  for (const OpPtr& child : op.children) PrintOp(*child, depth + 1, out);
}

void PrintScalarPlans(const Scalar& scalar, int depth, std::string* out) {
  if (scalar.kind == ScalarKind::kNested) {
    Indent(out, depth);
    *out += "nested " + std::string(AggKindName(scalar.agg)) + "(" +
            scalar.input_attr + "):\n";
    PrintOp(*scalar.plan, depth + 1, out);
  }
  for (const ScalarPtr& child : scalar.children) {
    PrintScalarPlans(*child, depth, out);
  }
}

}  // namespace

std::string Operator::ToString() const {
  std::string out;
  PrintOp(*this, 0, &out);
  return out;
}

OpPtr MakeOp(OpKind kind) { return std::make_unique<Operator>(kind); }
ScalarPtr MakeScalar(ScalarKind kind) {
  return std::make_unique<Scalar>(kind);
}

}  // namespace natix::algebra
