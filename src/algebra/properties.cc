#include "algebra/properties.h"

namespace natix::algebra {

namespace {

void CollectWritten(const Operator& op, std::set<std::string>* out);

void CollectWrittenInScalar(const Scalar& scalar,
                            std::set<std::string>* out) {
  // Nested plans bind their own attributes; they are visible to the
  // subscript that embeds them (the NVM reads nested results), and they
  // live in the same register file, so count them as written.
  if (scalar.kind == ScalarKind::kNested) CollectWritten(*scalar.plan, out);
  for (const ScalarPtr& child : scalar.children) {
    CollectWrittenInScalar(*child, out);
  }
}

void CollectWritten(const Operator& op, std::set<std::string>* out) {
  switch (op.kind) {
    case OpKind::kMap:
    case OpKind::kCounter:
    case OpKind::kUnnestMap:
    case OpKind::kUnnest:
    case OpKind::kAggregate:
    case OpKind::kBinaryGroup:
    case OpKind::kTmpCs:
    case OpKind::kIdDeref:
      out->insert(op.attr);
      break;
    default:
      break;
  }
  if (op.scalar != nullptr) CollectWrittenInScalar(*op.scalar, out);
  for (const OpPtr& child : op.children) CollectWritten(*child, out);
}

void CollectRefs(const Scalar& scalar, std::set<std::string>* out);

void CollectOpRefs(const Operator& op, std::set<std::string>* out) {
  switch (op.kind) {
    case OpKind::kCounter:
      if (!op.ctx_attr.empty()) out->insert(op.ctx_attr);
      break;
    case OpKind::kUnnestMap:
    case OpKind::kUnnest:
    case OpKind::kAggregate:
      out->insert(op.ctx_attr);
      break;
    case OpKind::kTmpCs:
      if (!op.ctx_attr.empty()) out->insert(op.ctx_attr);
      break;
    case OpKind::kIdDeref:
      out->insert(op.ctx_attr);
      break;
    case OpKind::kBinaryGroup:
      out->insert(op.left_attr);
      out->insert(op.right_attr);
      out->insert(op.ctx_attr);
      break;
    case OpKind::kDupElim:
    case OpKind::kSort:
      out->insert(op.attr);
      break;
    case OpKind::kProject:
      for (const std::string& attr : op.attrs) out->insert(attr);
      break;
    case OpKind::kMemoX:
      for (const std::string& attr : op.key_attrs) out->insert(attr);
      break;
    default:
      break;
  }
  if (op.scalar != nullptr) CollectRefs(*op.scalar, out);
  for (const OpPtr& child : op.children) CollectOpRefs(*child, out);
}

void CollectRefs(const Scalar& scalar, std::set<std::string>* out) {
  if (scalar.kind == ScalarKind::kAttrRef) out->insert(scalar.name);
  if (scalar.kind == ScalarKind::kNested) {
    CollectOpRefs(*scalar.plan, out);
    out->insert(scalar.input_attr);
  }
  for (const ScalarPtr& child : scalar.children) CollectRefs(*child, out);
}

}  // namespace

std::set<std::string> WrittenAttributes(const Operator& op) {
  std::set<std::string> out;
  CollectWritten(op, &out);
  return out;
}

std::set<std::string> FreeAttributes(const Operator& op) {
  std::set<std::string> written = WrittenAttributes(op);
  std::set<std::string> referenced;
  CollectOpRefs(op, &referenced);
  std::set<std::string> free;
  for (const std::string& attr : referenced) {
    if (written.find(attr) == written.end()) free.insert(attr);
  }
  return free;
}

std::set<std::string> ScalarFreeAttributes(const Scalar& scalar) {
  std::set<std::string> referenced;
  CollectRefs(scalar, &referenced);
  // Attributes bound inside the scalar's own nested plans are not free.
  std::set<std::string> written;
  CollectWrittenInScalar(scalar, &written);
  std::set<std::string> free;
  for (const std::string& attr : referenced) {
    if (written.find(attr) == written.end()) free.insert(attr);
  }
  return free;
}

size_t PlanSize(const Operator& op) {
  size_t n = 1;
  for (const OpPtr& child : op.children) n += PlanSize(*child);
  return n;
}

}  // namespace natix::algebra
