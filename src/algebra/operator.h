#ifndef NATIX_ALGEBRA_OPERATOR_H_
#define NATIX_ALGEBRA_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "runtime/conversions.h"
#include "runtime/node_ops.h"
#include "xpath/ast.h"
#include "xpath/functions.h"

namespace natix::algebra {

struct Operator;
using OpPtr = std::unique_ptr<Operator>;
struct Scalar;
using ScalarPtr = std::unique_ptr<Scalar>;

/// Logical operators: the sequence-valued operators of Fig. 1 plus the
/// paper's extensions — Tmp^cs / Tmp^cs_c (Sec. 3.3.4 / 4.3.1), the MemoX
/// operator (Sec. 4.2.2), the position counter map (Sec. 3.3.3), and an
/// id() dereference (Sec. 3.6.3).
enum class OpKind : uint8_t {
  kSingletonScan,  // □ — the singleton sequence of the empty tuple
  kSelect,         // σ_scalar(child)
  kMap,            // χ_attr:scalar(child); `materialize` = the χ^mat of 4.3.2
  kCounter,        // χ_cp:counter++ — reset when reset_attr changes
  kUnnestMap,      // Υ_attr:ctx/axis::test(child) — the location step
  kDJoin,          // children[0] < children[1] > (right side dependent)
  kCross,          // children[0] × children[1]
  kSemiJoin,       // children[0] ⋉_scalar children[1]
  kAntiJoin,       // children[0] ▷_scalar children[1]
  kUnnest,         // μ_attr: explode sequence-valued attr into out_attr
  kConcat,         // ⊕ over children
  kDupElim,        // Π^D on `attr` (node identity), keeping other attrs
  kProject,        // Π_A on `attrs` (restricts live attributes)
  kSort,           // Sort_attr by document order
  kAggregate,      // 𝔄_attr;agg(child) — singleton output tuple
  kBinaryGroup,    // children[0] Γ_{attr; left_attr θ right_attr; agg} children[1]
  kTmpCs,          // Tmp^cs (ctx_attr empty) or Tmp^cs_c — adds attr = cs
  kMemoX,          // 𝔐_{key_attrs}(child) — memoizes child's tuples
  kIdDeref,        // id(): dereference id tokens to element nodes -> attr
  kLimit           // first `limit` tuples of the child, then early Close()
};

const char* OpKindName(OpKind kind);

/// Aggregation functions of 𝔄 and of nested scalar evaluation: XPath
/// count()/sum() plus the internal exists()/max()/min() of Sec. 3.6.2 and
/// the "value of the node first in document order" family used for the
/// implicit node-set conversions.
enum class AggKind : uint8_t {
  kCount,
  kSum,         // sum of number(string-value) over nodes
  kExists,      // boolean; supports early exit (Sec. 5.2.5)
  kMax,         // max of number(node), NaN when empty
  kMin,
  kFirstString,     // string-value of first node in document order ("" empty)
  kFirstName,       // name() of first node in document order
  kFirstLocalName,  // local-name() of first node
};

const char* AggKindName(AggKind kind);

/// Scalar subscript expressions: evaluated per tuple by the NVM. They
/// reference tuple attributes by name (resolved to registers by the code
/// generator / attribute manager) and may embed nested sequence-valued
/// plans, accessed through the NVM's nested-iterator commands
/// (Sec. 5.2.3).
enum class ScalarKind : uint8_t {
  kNumberConst,
  kStringConst,
  kBoolConst,
  kAttrRef,   // tuple attribute (free variables of dependent expressions)
  kVarRef,    // XPath $variable from the execution context
  kArith,     // +,-,*,div,mod on children[0,1] (number semantics)
  kNegate,    // unary minus
  kLogical,   // and/or on children[0,1] (short-circuit)
  kCompare,   // atomic comparison with runtime type promotion
  kFunc,      // XPath core function on scalar children
  kNested     // aggregate over a nested sequence-valued plan
};

struct Scalar {
  explicit Scalar(ScalarKind k) : kind(k) {}

  ScalarKind kind;
  double number = 0;                       // kNumberConst
  bool boolean = false;                    // kBoolConst
  std::string string_value;                // kStringConst
  std::string name;                        // kAttrRef / kVarRef
  xpath::BinaryOp op = xpath::BinaryOp::kAdd;       // kArith / kLogical
  runtime::CompareOp cmp = runtime::CompareOp::kEq;  // kCompare
  xpath::FunctionId function = xpath::FunctionId::kUnknown;  // kFunc
  std::vector<ScalarPtr> children;

  // kNested:
  OpPtr plan;             // sequence-valued subplan
  AggKind agg = AggKind::kExists;
  std::string input_attr;  // attribute of `plan` fed to the aggregate

  std::string ToString() const;
};

/// A logical operator node.
struct Operator {
  explicit Operator(OpKind k) : kind(k) {}

  OpKind kind;
  std::vector<OpPtr> children;

  /// Primary produced / operated-on attribute: χ and Υ output, μ output,
  /// dedup/sort attribute, 𝔄 output, Tmp^cs output (the cs attribute),
  /// counter output (the cp attribute), id() output.
  std::string attr;
  /// Context input: Υ's context attribute, Tmp^cs_c's context attribute,
  /// the counter's reset attribute, μ's sequence-valued input attribute,
  /// Γ's and 𝔄's aggregated attribute, id()'s input attribute.
  std::string ctx_attr;

  // kUnnestMap:
  runtime::Axis axis = runtime::Axis::kChild;
  xpath::AstNodeTest test;  // names resolved at code generation

  // kSelect / kMap / kSemiJoin / kAntiJoin subscripts:
  ScalarPtr scalar;
  /// kMap: χ^mat — memoize the subscript per distinct input (Sec. 4.3.2).
  bool materialize = false;

  // kAggregate / kBinaryGroup:
  AggKind agg = AggKind::kCount;
  /// kBinaryGroup: join condition left_attr == right_attr (θ fixed to
  /// equality, the only form the translation needs).
  std::string left_attr;
  std::string right_attr;

  // kProject:
  std::vector<std::string> attrs;

  // kMemoX:
  std::vector<std::string> key_attrs;

  /// kLimit: number of tuples to pass through before reporting
  /// exhaustion and closing the input pipeline (always >= 1; a limit of
  /// 0 would be a statically-empty plan, which the simplifier expresses
  /// differently).
  uint64_t limit = 0;

  // kIdDeref: when `scalar` is set, tokens come from its string value;
  // otherwise from the string-values of nodes in ctx_attr.

  /// Multi-line indented tree rendering (plan explain output).
  std::string ToString() const;
};

OpPtr MakeOp(OpKind kind);
ScalarPtr MakeScalar(ScalarKind kind);

}  // namespace natix::algebra

#endif  // NATIX_ALGEBRA_OPERATOR_H_
