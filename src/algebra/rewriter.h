#ifndef NATIX_ALGEBRA_REWRITER_H_
#define NATIX_ALGEBRA_REWRITER_H_

#include <set>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "base/statusor.h"

namespace natix::algebra {

/// Properties inferred for the tuple sequence an operator produces.
/// Compatibility view over the full property-inference engine
/// (src/analysis/property_inference.h), which additionally tracks
/// grouping, cardinality bounds and static node classes.
struct SequenceProperties {
  /// The sequence provably holds at most one tuple.
  bool singleton = false;
  /// Attributes whose values provably contain no duplicates.
  std::set<std::string> duplicate_free;
  /// Attributes by whose document order the sequence is provably
  /// ascending ("interesting orders", Hidders/Michiels [13]).
  std::set<std::string> ordered_by;
  /// Attributes whose values are provably pairwise non-nested (no value
  /// is a proper ancestor of another) — the side condition that lets
  /// child steps preserve document order and descendant steps preserve
  /// duplicate-freedom.
  std::set<std::string> non_nested;
};

/// Infers sequence properties bottom-up (conservatively) by projecting
/// the property-inference lattice onto the attribute sets above.
SequenceProperties InferProperties(const Operator& op);

/// One property-justified plan rewrite: which rule fired, on which
/// operator, and the inferred property that proves it sound.
struct RewriteEvent {
  std::string rule;           // e.g. "drop-redundant-sort"
  std::string target;         // e.g. "Sort[c4]"
  std::string justification;  // e.g. "{card:n, ord:doc(c4), dup-free(c4)}"
};
using RewriteLog = std::vector<RewriteEvent>;

/// Logical plan simplification. Property-justified rules:
///  * removes duplicate eliminations whose input is provably
///    duplicate-free on the eliminated attribute,
///  * removes sorts whose input is provably in document order (and
///    duplicate-free, so any stable order is THE order) already,
///  * removes selections with a constant-true predicate or a provably
///    empty input,
///  * replaces navigation steps that are statically empty for the
///    context's node class (children of an attribute, ancestors of the
///    root, text() on the attribute axis, ...) by the constant-false
///    selection marker, keeping the input's bindings,
///  * prunes statically-empty concat branches (and collapses
///    single-branch concats), drops anti joins against provably empty
///    right sides, turns semi joins against empty right sides into
///    constant-false selections,
///  * replaces a context-free Tmp^cs over a <=1-tuple input by a
///    constant map (cs = 1),
///  * folds aggregates over statically-empty nested subplans into
///    constants (exists -> false, count/sum -> 0, ...),
///  * caps positional predicates (`position() = k` / `< k` / `<= k`,
///    including the numeric-literal form `[3]`) with a Limit operator
///    and pushes it below non-blocking 1:1 operators, so the pipeline —
///    including the page scan feeding it — closes after the k-th
///    binding ("limit:*" rules; `limit_pushdown` disables just these,
///    the ablation/differential-fuzz switch).
/// Returns the number of operators removed or replaced; each rule
/// application is appended to `log` (when non-null) with the proving
/// property. Also rewrites nested subplans inside scalar subscripts.
size_t SimplifyPlan(OpPtr* plan, RewriteLog* log = nullptr,
                    bool limit_pushdown = true);

/// Like SimplifyPlan, but when plan verification is enabled
/// (analysis::VerificationEnabled — on by default in debug builds) every
/// rule application is re-checked: Layer 1 re-verifies well-formedness
/// of the whole plan, and the Layer-1.5 property-preservation pass
/// re-infers the rewritten subtree's properties and fails if the rule
/// weakened them (order, duplicate-freedom, nesting, cardinality, node
/// class). A violation aborts rewriting and names the offending rule,
/// instead of letting a malformed or semantics-changing plan flow on to
/// code generation.
StatusOr<size_t> SimplifyPlanChecked(OpPtr* plan, RewriteLog* log = nullptr,
                                     bool limit_pushdown = true);

}  // namespace natix::algebra

#endif  // NATIX_ALGEBRA_REWRITER_H_
