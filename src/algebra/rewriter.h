#ifndef NATIX_ALGEBRA_REWRITER_H_
#define NATIX_ALGEBRA_REWRITER_H_

#include <set>
#include <string>

#include "algebra/operator.h"
#include "base/statusor.h"

namespace natix::algebra {

/// Properties inferred for the tuple sequence an operator produces.
struct SequenceProperties {
  /// The sequence provably holds at most one tuple.
  bool singleton = false;
  /// Attributes whose values provably contain no duplicates.
  std::set<std::string> duplicate_free;
  /// Attributes by whose document order the sequence is provably
  /// ascending ("interesting orders", Hidders/Michiels [13]).
  std::set<std::string> ordered_by;
  /// Attributes whose values are provably pairwise non-nested (no value
  /// is an ancestor of another) — the side condition that lets child
  /// steps preserve document order.
  std::set<std::string> non_nested;
};

/// Infers sequence properties bottom-up (conservatively). This is the
/// axis-level fragment of the Hidders/Michiels duplicate analysis [13]
/// that the paper lists as future work (Sec. 4.1): child, attribute and
/// self steps over duplicate-free contexts produce duplicate-free output.
SequenceProperties InferProperties(const Operator& op);

/// Logical plan simplification:
///  * removes duplicate eliminations whose input is provably
///    duplicate-free on the eliminated attribute,
///  * removes sorts whose input is provably in document order already,
///  * removes selections with a constant-true predicate.
/// Returns the number of operators removed. Also rewrites nested
/// subplans inside scalar subscripts.
size_t SimplifyPlan(OpPtr* plan);

/// Like SimplifyPlan, but when plan verification is enabled
/// (analysis::VerificationEnabled — on by default in debug builds) the
/// Layer-1 verifier re-checks the whole plan after every rule
/// application. A violation aborts rewriting and names the offending
/// rule, instead of letting a malformed plan flow on to code generation.
StatusOr<size_t> SimplifyPlanChecked(OpPtr* plan);

}  // namespace natix::algebra

#endif  // NATIX_ALGEBRA_REWRITER_H_
