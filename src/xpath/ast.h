#ifndef NATIX_XPATH_AST_H_
#define NATIX_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "runtime/node_ops.h"

namespace natix::xpath {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// XPath 1.0 expression result types (Sec. 2.1 of the paper / Sec. 3.1 of
/// the recommendation). Derived during semantic analysis.
enum class ExprType : uint8_t {
  kUnknown,
  kNodeSet,
  kBoolean,
  kNumber,
  kString
};

const char* ExprTypeName(ExprType type);

enum class BinaryOp : uint8_t {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod
};

const char* BinaryOpName(BinaryOp op);

/// A node test as parsed (names still strings; resolved to dictionary ids
/// at code generation time).
struct AstNodeTest {
  enum class Kind : uint8_t {
    kName,      // QName (namespaces are not processed; names match
                // literally, colons included)
    kAnyName,   // *
    kText,      // text()
    kComment,   // comment()
    kPi,        // processing-instruction()
    kPiTarget,  // processing-instruction('target')
    kAnyKind    // node()
  };
  Kind kind = Kind::kAnyKind;
  std::string name;  // for kName / kPiTarget

  std::string ToString() const;
};

struct PredicateInfo;

/// One location step: axis, node test, predicates.
struct Step {
  runtime::Axis axis = runtime::Axis::kChild;
  AstNodeTest test;
  std::vector<ExprPtr> predicates;
  /// Parallel to `predicates`; filled by the normalizer.
  std::vector<PredicateInfo> predicate_info;
};

/// Expression node kinds. A single struct with a kind tag keeps the
/// annotate-in-place compiler passes (normalize, sema, fold) simple.
enum class ExprKind : uint8_t {
  kNumberLiteral,
  kStringLiteral,
  kBooleanLiteral,  // introduced by constant folding of true()/false()
  kVariable,      // $name
  kFunctionCall,  // name(args...)
  kBinary,        // op applied to children[0], children[1]
  kNegate,        // unary minus on children[0]
  kUnion,         // children[i] are the union branches (node-sets)
  kLocationPath,  // steps, absolute or relative
  kPathExpr,      // children[0] '/' steps  (general path expression)
  kFilterExpr     // children[0] with predicates
};

/// Predicate classification computed by the normalizer (Sec. 3.3, 4.3).
struct PredicateInfo {
  bool uses_position = false;  // contains position()
  bool uses_last = false;      // contains last()
  bool has_nested_path = false;
  bool expensive = false;      // cost model classification (Sec. 4.3.2)
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}

  ExprKind kind;

  // -- kind-specific payload ----------------------------------------------
  double number = 0;                   // kNumberLiteral
  bool boolean = false;                // kBooleanLiteral
  std::string string_value;            // kStringLiteral
  std::string name;                    // kVariable / kFunctionCall
  BinaryOp op = BinaryOp::kOr;         // kBinary
  std::vector<ExprPtr> children;       // operands / arguments / branches
  bool absolute = false;               // kLocationPath
  std::vector<Step> steps;             // kLocationPath / kPathExpr
  std::vector<ExprPtr> predicates;     // kFilterExpr
  std::vector<PredicateInfo> predicate_info;  // parallel to `predicates`
  // -- annotations ----------------------------------------------------------
  ExprType type = ExprType::kUnknown;  // set by semantic analysis
  /// Resolved function id (kFunctionCall only), set by semantic analysis.
  /// Stored as int to avoid a header cycle with functions.h; cast to
  /// FunctionId. -1 while unresolved.
  int function_id = -1;

  /// Grammar-faithful rendering, used by tests and -explain output.
  std::string ToString() const;
};

ExprPtr MakeExpr(ExprKind kind);

/// Deep copy (used by the constant folder and translator when expanding
/// syntactic sugar).
ExprPtr CloneExpr(const Expr& e);

}  // namespace natix::xpath

#endif  // NATIX_XPATH_AST_H_
