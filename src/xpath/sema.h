#ifndef NATIX_XPATH_SEMA_H_
#define NATIX_XPATH_SEMA_H_

#include "base/status.h"
#include "xpath/ast.h"

namespace natix::xpath {

/// Semantic analysis (step 3 of the compiler pipeline, Sec. 5.1):
///
///  * resolves function calls against the core library and validates
///    argument counts,
///  * derives the static ExprType of every expression,
///  * inserts the implicit conversions of the recommendation as explicit
///    function calls (Sec. 3.3.1 of the paper: "All implicit conversions
///    have also been added as function calls"), including expanding
///    optional context-node arguments (string() -> string(self::node())),
///  * rewrites number-valued predicates into position() comparisons
///    ("a[3]" -> "a[position() = 3]"),
///  * wraps non-boolean predicates in boolean() (node-set predicates later
///    become the internal exists() aggregate, Sec. 3.3.2),
///  * validates node-set contexts (union branches, filter/path bases,
///    count()/sum() arguments).
///
/// Variables are supported with atomic values; a variable in a context
/// that statically requires a node set is rejected with kNotSupported.
Status Analyze(Expr* root);

}  // namespace natix::xpath

#endif  // NATIX_XPATH_SEMA_H_
