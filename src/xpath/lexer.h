#ifndef NATIX_XPATH_LEXER_H_
#define NATIX_XPATH_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"

namespace natix::xpath {

enum class TokenKind : uint8_t {
  kEnd,
  kName,        // NCName (possibly containing ':'), before disambiguation
  kNumber,
  kLiteral,     // 'string' or "string"
  kVariable,    // $name
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kDot,
  kDotDot,
  kAt,
  kComma,
  kDoubleColon,
  kSlash,
  kDoubleSlash,
  kPipe,
  kPlus,
  kMinus,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kStar         // '*': name test or multiply, resolved by the parser
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // name / literal content
  double number = 0;  // kNumber
  size_t position = 0;  // byte offset in the query, for error messages
};

/// Tokenizes an XPath 1.0 expression. The '*'-vs-multiply and
/// operator-name ("and", "or", "div", "mod") ambiguities are resolved by
/// the parser using the previous-token rule of the recommendation
/// (Sec. 3.7); the lexer reports both simply as kStar / kName.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace natix::xpath

#endif  // NATIX_XPATH_LEXER_H_
