#include "xpath/fold.h"

#include <cmath>
#include <optional>

#include "base/strings.h"
#include "base/xpath_number.h"
#include "obs/trace.h"
#include "xpath/functions.h"

namespace natix::xpath {

namespace {

bool IsLiteral(const Expr& e) {
  return e.kind == ExprKind::kNumberLiteral ||
         e.kind == ExprKind::kStringLiteral ||
         e.kind == ExprKind::kBooleanLiteral;
}

ExprPtr NumberLit(double v) {
  ExprPtr e = MakeExpr(ExprKind::kNumberLiteral);
  e->number = v;
  e->type = ExprType::kNumber;
  return e;
}

ExprPtr StringLit(std::string v) {
  ExprPtr e = MakeExpr(ExprKind::kStringLiteral);
  e->string_value = std::move(v);
  e->type = ExprType::kString;
  return e;
}

ExprPtr BoolLit(bool v) {
  ExprPtr e = MakeExpr(ExprKind::kBooleanLiteral);
  e->boolean = v;
  e->type = ExprType::kBoolean;
  return e;
}

double LitToNumber(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumberLiteral:
      return e.number;
    case ExprKind::kBooleanLiteral:
      return e.boolean ? 1.0 : 0.0;
    default:
      return StringToXPathNumber(e.string_value);
  }
}

std::string LitToString(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumberLiteral:
      return XPathNumberToString(e.number);
    case ExprKind::kBooleanLiteral:
      return e.boolean ? "true" : "false";
    default:
      return e.string_value;
  }
}

bool LitToBoolean(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumberLiteral:
      return e.number != 0 && !std::isnan(e.number);
    case ExprKind::kBooleanLiteral:
      return e.boolean;
    default:
      return !e.string_value.empty();
  }
}

std::optional<ExprPtr> FoldBinary(const Expr& e) {
  const Expr& a = *e.children[0];
  const Expr& b = *e.children[1];
  switch (e.op) {
    case BinaryOp::kOr:
      // One true literal suffices (the other operand is pure: XPath has
      // no side effects, so short-circuit folding is safe).
      if (IsLiteral(a) && LitToBoolean(a)) return BoolLit(true);
      if (IsLiteral(b) && LitToBoolean(b) && IsLiteral(a)) {
        return BoolLit(true);
      }
      if (IsLiteral(a) && IsLiteral(b)) {
        return BoolLit(LitToBoolean(a) || LitToBoolean(b));
      }
      return std::nullopt;
    case BinaryOp::kAnd:
      if (IsLiteral(a) && !LitToBoolean(a)) return BoolLit(false);
      if (IsLiteral(a) && IsLiteral(b)) {
        return BoolLit(LitToBoolean(a) && LitToBoolean(b));
      }
      return std::nullopt;
    default:
      break;
  }
  if (!IsLiteral(a) || !IsLiteral(b)) return std::nullopt;
  switch (e.op) {
    case BinaryOp::kAdd:
      return NumberLit(LitToNumber(a) + LitToNumber(b));
    case BinaryOp::kSub:
      return NumberLit(LitToNumber(a) - LitToNumber(b));
    case BinaryOp::kMul:
      return NumberLit(LitToNumber(a) * LitToNumber(b));
    case BinaryOp::kDiv:
      return NumberLit(LitToNumber(a) / LitToNumber(b));
    case BinaryOp::kMod:
      return NumberLit(std::fmod(LitToNumber(a), LitToNumber(b)));
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      bool eq;
      if (a.kind == ExprKind::kBooleanLiteral ||
          b.kind == ExprKind::kBooleanLiteral) {
        eq = LitToBoolean(a) == LitToBoolean(b);
      } else if (a.kind == ExprKind::kNumberLiteral ||
                 b.kind == ExprKind::kNumberLiteral) {
        eq = LitToNumber(a) == LitToNumber(b);
      } else {
        eq = LitToString(a) == LitToString(b);
      }
      return BoolLit(e.op == BinaryOp::kEq ? eq : !eq);
    }
    case BinaryOp::kLt:
      return BoolLit(LitToNumber(a) < LitToNumber(b));
    case BinaryOp::kLe:
      return BoolLit(LitToNumber(a) <= LitToNumber(b));
    case BinaryOp::kGt:
      return BoolLit(LitToNumber(a) > LitToNumber(b));
    case BinaryOp::kGe:
      return BoolLit(LitToNumber(a) >= LitToNumber(b));
    default:
      return std::nullopt;
  }
}

std::optional<ExprPtr> FoldCall(const Expr& e) {
  auto id = static_cast<FunctionId>(e.function_id);
  if (id == FunctionId::kTrue) return BoolLit(true);
  if (id == FunctionId::kFalse) return BoolLit(false);
  for (const ExprPtr& arg : e.children) {
    if (!IsLiteral(*arg)) return std::nullopt;
  }
  auto arg = [&](size_t i) -> const Expr& { return *e.children[i]; };
  switch (id) {
    case FunctionId::kString:
      return StringLit(LitToString(arg(0)));
    case FunctionId::kNumber:
      return NumberLit(LitToNumber(arg(0)));
    case FunctionId::kBoolean:
      return BoolLit(LitToBoolean(arg(0)));
    case FunctionId::kNot:
      return BoolLit(!LitToBoolean(arg(0)));
    case FunctionId::kConcat: {
      std::string out;
      for (const ExprPtr& a : e.children) out += LitToString(*a);
      return StringLit(std::move(out));
    }
    case FunctionId::kStartsWith:
      return BoolLit(StartsWith(LitToString(arg(0)), LitToString(arg(1))));
    case FunctionId::kContains:
      return BoolLit(Contains(LitToString(arg(0)), LitToString(arg(1))));
    case FunctionId::kSubstringBefore:
      return StringLit(
          SubstringBefore(LitToString(arg(0)), LitToString(arg(1))));
    case FunctionId::kSubstringAfter:
      return StringLit(
          SubstringAfter(LitToString(arg(0)), LitToString(arg(1))));
    case FunctionId::kStringLength:
      return NumberLit(static_cast<double>(Utf8Length(LitToString(arg(0)))));
    case FunctionId::kNormalizeSpace:
      return StringLit(NormalizeSpace(LitToString(arg(0))));
    case FunctionId::kTranslate:
      return StringLit(TranslateChars(LitToString(arg(0)),
                                      LitToString(arg(1)),
                                      LitToString(arg(2))));
    case FunctionId::kFloor:
      return NumberLit(std::floor(LitToNumber(arg(0))));
    case FunctionId::kCeiling:
      return NumberLit(std::ceil(LitToNumber(arg(0))));
    case FunctionId::kRound:
      return NumberLit(XPathRound(LitToNumber(arg(0))));
    default:
      // substring() (float index edge cases live in one place: the NVM),
      // positional, node-set and context-dependent functions stay.
      return std::nullopt;
  }
}

void FoldExpr(ExprPtr* slot) {
  Expr* e = slot->get();
  for (ExprPtr& child : e->children) FoldExpr(&child);
  for (ExprPtr& p : e->predicates) FoldExpr(&p);
  for (Step& step : e->steps) {
    for (ExprPtr& p : step.predicates) FoldExpr(&p);
  }
  switch (e->kind) {
    case ExprKind::kNegate:
      if (IsLiteral(*e->children[0])) {
        *slot = NumberLit(-LitToNumber(*e->children[0]));
      }
      return;
    case ExprKind::kBinary: {
      auto folded = FoldBinary(*e);
      if (folded.has_value()) *slot = std::move(*folded);
      return;
    }
    case ExprKind::kFunctionCall: {
      auto folded = FoldCall(*e);
      if (folded.has_value()) *slot = std::move(*folded);
      return;
    }
    default:
      return;
  }
}

}  // namespace

void FoldConstants(Expr* root) {
  obs::ScopedSpan span("compile/fold");
  // The root Expr is held by the caller, not an ExprPtr slot we can
  // replace; wrap the recursion so only children fold in place, and
  // emulate a top-level fold by copying the folded child back.
  ExprPtr holder = CloneExpr(*root);
  FoldExpr(&holder);
  *root = std::move(*holder);
}

}  // namespace natix::xpath
