#ifndef NATIX_XPATH_PARSER_H_
#define NATIX_XPATH_PARSER_H_

#include <string_view>

#include "base/statusor.h"
#include "xpath/ast.h"

namespace natix::xpath {

/// Parses an XPath 1.0 expression into an AST (step 1 of the compiler
/// pipeline, Sec. 5.1). Both full axis names and the paper's Fig. 5
/// abbreviations (desc, anc, fol, pre, par, fol-sib, pre-sib, attr) are
/// accepted. The namespace axis is rejected with kNotSupported.
StatusOr<ExprPtr> ParseXPath(std::string_view query);

}  // namespace natix::xpath

#endif  // NATIX_XPATH_PARSER_H_
