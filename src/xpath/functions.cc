#include "xpath/functions.h"

#include "base/logging.h"

namespace natix::xpath {

namespace {

constexpr FunctionInfo kFunctions[] = {
    // id, name, min, max, result type, node-set input
    {FunctionId::kLast, "last", 0, 0, ExprType::kNumber, false},
    {FunctionId::kPosition, "position", 0, 0, ExprType::kNumber, false},
    {FunctionId::kCount, "count", 1, 1, ExprType::kNumber, true},
    {FunctionId::kId, "id", 1, 1, ExprType::kNodeSet, false},
    {FunctionId::kLocalName, "local-name", 0, 1, ExprType::kString, true},
    {FunctionId::kNamespaceUri, "namespace-uri", 0, 1, ExprType::kString,
     true},
    {FunctionId::kName, "name", 0, 1, ExprType::kString, true},
    {FunctionId::kString, "string", 0, 1, ExprType::kString, false},
    {FunctionId::kConcat, "concat", 2, -1, ExprType::kString, false},
    {FunctionId::kStartsWith, "starts-with", 2, 2, ExprType::kBoolean,
     false},
    {FunctionId::kContains, "contains", 2, 2, ExprType::kBoolean, false},
    {FunctionId::kSubstringBefore, "substring-before", 2, 2,
     ExprType::kString, false},
    {FunctionId::kSubstringAfter, "substring-after", 2, 2, ExprType::kString,
     false},
    {FunctionId::kSubstring, "substring", 2, 3, ExprType::kString, false},
    {FunctionId::kStringLength, "string-length", 0, 1, ExprType::kNumber,
     false},
    {FunctionId::kNormalizeSpace, "normalize-space", 0, 1, ExprType::kString,
     false},
    {FunctionId::kTranslate, "translate", 3, 3, ExprType::kString, false},
    {FunctionId::kBoolean, "boolean", 1, 1, ExprType::kBoolean, false},
    {FunctionId::kNot, "not", 1, 1, ExprType::kBoolean, false},
    {FunctionId::kTrue, "true", 0, 0, ExprType::kBoolean, false},
    {FunctionId::kFalse, "false", 0, 0, ExprType::kBoolean, false},
    {FunctionId::kLang, "lang", 1, 1, ExprType::kBoolean, false},
    {FunctionId::kNumber, "number", 0, 1, ExprType::kNumber, false},
    {FunctionId::kSum, "sum", 1, 1, ExprType::kNumber, true},
    {FunctionId::kFloor, "floor", 1, 1, ExprType::kNumber, false},
    {FunctionId::kCeiling, "ceiling", 1, 1, ExprType::kNumber, false},
    {FunctionId::kRound, "round", 1, 1, ExprType::kNumber, false},
};

constexpr FunctionInfo kInternal[] = {
    {FunctionId::kExistsInternal, "exists*", 1, 1, ExprType::kBoolean, true},
    {FunctionId::kMaxInternal, "max*", 1, 1, ExprType::kNumber, true},
    {FunctionId::kMinInternal, "min*", 1, 1, ExprType::kNumber, true},
    {FunctionId::kRootInternal, "root*", 1, 1, ExprType::kNodeSet, false},
};

}  // namespace

const FunctionInfo* LookupFunction(std::string_view name) {
  for (const FunctionInfo& info : kFunctions) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const FunctionInfo& FunctionInfoFor(FunctionId id) {
  for (const FunctionInfo& info : kFunctions) {
    if (info.id == id) return info;
  }
  for (const FunctionInfo& info : kInternal) {
    if (info.id == id) return info;
  }
  NATIX_CHECK(false);
  static FunctionInfo unknown;
  return unknown;
}

}  // namespace natix::xpath
