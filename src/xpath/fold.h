#ifndef NATIX_XPATH_FOLD_H_
#define NATIX_XPATH_FOLD_H_

#include "xpath/ast.h"

namespace natix::xpath {

/// Constant folding (the "Rewrite" step 4 of the compiler pipeline,
/// Sec. 5.1): evaluates operators and pure core functions whose operands
/// are literals at compile time, bottom-up. true() and false() fold to
/// boolean literals. Expressions involving the context (paths,
/// position(), last()), variables, or id() are left untouched.
void FoldConstants(Expr* root);

}  // namespace natix::xpath

#endif  // NATIX_XPATH_FOLD_H_
