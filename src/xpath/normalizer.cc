#include "xpath/normalizer.h"

#include "obs/trace.h"
#include "xpath/functions.h"

namespace natix::xpath {

namespace {

/// Scans for position()/last() calls belonging to *this* predicate's
/// context: the traversal does not descend into nested predicates (they
/// have their own context position/size), but does descend into function
/// arguments and operators.
void ScanPositional(const Expr& e, bool* uses_position, bool* uses_last) {
  switch (e.kind) {
    case ExprKind::kFunctionCall: {
      auto id = static_cast<FunctionId>(e.function_id);
      if (id == FunctionId::kPosition) *uses_position = true;
      if (id == FunctionId::kLast) *uses_last = true;
      for (const ExprPtr& arg : e.children) {
        ScanPositional(*arg, uses_position, uses_last);
      }
      return;
    }
    case ExprKind::kBinary:
    case ExprKind::kNegate:
    case ExprKind::kUnion:
      for (const ExprPtr& child : e.children) {
        ScanPositional(*child, uses_position, uses_last);
      }
      return;
    case ExprKind::kLocationPath:
    case ExprKind::kPathExpr:
    case ExprKind::kFilterExpr:
      // Steps' and filters' own predicates have their own context; the
      // base of a path/filter expression could only be another node-set
      // expression, which cannot contain free position()/last() either
      // (they would belong to ITS predicates). Nothing to scan.
      return;
    default:
      return;
  }
}

/// True when the subtree contains any location path (descends everywhere).
bool ContainsPath(const Expr& e) {
  if (e.kind == ExprKind::kLocationPath || e.kind == ExprKind::kPathExpr) {
    return true;
  }
  for (const ExprPtr& child : e.children) {
    if (ContainsPath(*child)) return true;
  }
  for (const ExprPtr& p : e.predicates) {
    if (ContainsPath(*p)) return true;
  }
  return false;
}

/// Cost model of Sec. 4.3.2 (instruction count, simplified): a nested
/// path is cheap when every step stays local to the context node
/// (attribute / self axes, no nested predicates) — such paths evaluate in
/// a handful of navigation instructions, like "@id='3'". Anything that
/// walks children or further is expensive.
bool ContainsExpensivePath(const Expr& e) {
  if (e.kind == ExprKind::kLocationPath || e.kind == ExprKind::kPathExpr) {
    if (e.kind == ExprKind::kPathExpr || e.absolute) return true;
    for (const Step& step : e.steps) {
      if (step.axis != runtime::Axis::kAttribute &&
          step.axis != runtime::Axis::kSelf) {
        return true;
      }
      if (!step.predicates.empty()) return true;
    }
    // Fall through: a local path; still scan its (empty) children.
  }
  for (const ExprPtr& child : e.children) {
    if (ContainsExpensivePath(*child)) return true;
  }
  for (const ExprPtr& p : e.predicates) {
    if (ContainsExpensivePath(*p)) return true;
  }
  return false;
}

void NormalizeExpr(Expr* e);

void NormalizeSteps(std::vector<Step>* steps) {
  for (Step& step : *steps) {
    step.predicate_info.clear();
    for (ExprPtr& predicate : step.predicates) {
      NormalizeExpr(predicate.get());
      step.predicate_info.push_back(AnalyzePredicate(*predicate));
    }
  }
}

void NormalizeExpr(Expr* e) {
  for (ExprPtr& child : e->children) NormalizeExpr(child.get());
  NormalizeSteps(&e->steps);
  if (e->kind == ExprKind::kFilterExpr) {
    e->predicate_info.clear();
    for (ExprPtr& predicate : e->predicates) {
      NormalizeExpr(predicate.get());
      e->predicate_info.push_back(AnalyzePredicate(*predicate));
    }
  }
}

}  // namespace

PredicateInfo AnalyzePredicate(const Expr& predicate) {
  PredicateInfo info;
  ScanPositional(predicate, &info.uses_position, &info.uses_last);
  // last() implies the position counter as well (Tmp^cs consumes cp).
  if (info.uses_last) info.uses_position = true;
  info.has_nested_path = ContainsPath(predicate);
  // Simple instruction-count cost model (Sec. 4.3.2): a clause is
  // expensive when it must evaluate a non-local nested path (one that
  // leaves the context node); attribute tests like @id='3' stay cheap.
  info.expensive = ContainsExpensivePath(predicate);
  return info;
}

void Normalize(Expr* root) {
  obs::ScopedSpan span("compile/normalize");
  NormalizeExpr(root);
}

}  // namespace natix::xpath
