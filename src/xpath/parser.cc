#include "xpath/parser.h"

#include <optional>
#include <utility>

#include "obs/trace.h"
#include "xpath/lexer.h"

namespace natix::xpath {

namespace {

using runtime::Axis;

std::optional<Axis> LookupAxis(std::string_view name) {
  // Standard names plus the abbreviations the paper uses in Fig. 5.
  if (name == "child") return Axis::kChild;
  if (name == "descendant" || name == "desc") return Axis::kDescendant;
  if (name == "descendant-or-self" || name == "desc-or-self") {
    return Axis::kDescendantOrSelf;
  }
  if (name == "parent" || name == "par") return Axis::kParent;
  if (name == "ancestor" || name == "anc") return Axis::kAncestor;
  if (name == "ancestor-or-self" || name == "anc-or-self") {
    return Axis::kAncestorOrSelf;
  }
  if (name == "following" || name == "fol") return Axis::kFollowing;
  if (name == "following-sibling" || name == "fol-sib") {
    return Axis::kFollowingSibling;
  }
  if (name == "preceding" || name == "pre") return Axis::kPreceding;
  if (name == "preceding-sibling" || name == "pre-sib") {
    return Axis::kPrecedingSibling;
  }
  if (name == "attribute" || name == "attr") return Axis::kAttribute;
  if (name == "self") return Axis::kSelf;
  return std::nullopt;
}

bool IsNodeTypeName(std::string_view name) {
  return name == "node" || name == "text" || name == "comment" ||
         name == "processing-instruction";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ExprPtr> Parse() {
    NATIX_ASSIGN_OR_RETURN(ExprPtr expr, ParseOrExpr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return expr;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, std::string_view what) {
    if (!Accept(kind)) return Error(std::string("expected ") + what.data());
    return Status::OK();
  }
  Status Error(std::string_view message) const {
    return Status::InvalidArgument(
        "XPath parse error at offset " + std::to_string(Peek().position) +
        ": " + std::string(message));
  }

  /// True when the next token is the operator name `op` at an operator
  /// position (XPath 3.7 disambiguation: we only call this where a binary
  /// operator is expected).
  bool AcceptOperatorName(std::string_view op) {
    if (Peek().kind == TokenKind::kName && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    ExprPtr e = MakeExpr(ExprKind::kBinary);
    e->op = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  StatusOr<ExprPtr> ParseOrExpr() {
    NATIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
    while (AcceptOperatorName("or")) {
      NATIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
      lhs = Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAndExpr() {
    NATIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseEqualityExpr());
    while (AcceptOperatorName("and")) {
      NATIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseEqualityExpr());
      lhs = Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseEqualityExpr() {
    NATIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRelationalExpr());
    while (true) {
      BinaryOp op;
      if (Accept(TokenKind::kEq)) {
        op = BinaryOp::kEq;
      } else if (Accept(TokenKind::kNe)) {
        op = BinaryOp::kNe;
      } else {
        return lhs;
      }
      NATIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRelationalExpr());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseRelationalExpr() {
    NATIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditiveExpr());
    while (true) {
      BinaryOp op;
      if (Accept(TokenKind::kLt)) {
        op = BinaryOp::kLt;
      } else if (Accept(TokenKind::kLe)) {
        op = BinaryOp::kLe;
      } else if (Accept(TokenKind::kGt)) {
        op = BinaryOp::kGt;
      } else if (Accept(TokenKind::kGe)) {
        op = BinaryOp::kGe;
      } else {
        return lhs;
      }
      NATIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditiveExpr());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseAdditiveExpr() {
    NATIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicativeExpr());
    while (true) {
      BinaryOp op;
      if (Accept(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Accept(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      NATIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicativeExpr());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseMultiplicativeExpr() {
    NATIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnaryExpr());
    while (true) {
      BinaryOp op;
      if (Accept(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (AcceptOperatorName("div")) {
        op = BinaryOp::kDiv;
      } else if (AcceptOperatorName("mod")) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      NATIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseUnaryExpr() {
    if (Accept(TokenKind::kMinus)) {
      NATIX_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnaryExpr());
      ExprPtr e = MakeExpr(ExprKind::kNegate);
      e->children.push_back(std::move(operand));
      return e;
    }
    return ParseUnionExpr();
  }

  StatusOr<ExprPtr> ParseUnionExpr() {
    NATIX_ASSIGN_OR_RETURN(ExprPtr first, ParsePathExpr());
    if (Peek().kind != TokenKind::kPipe) return first;
    ExprPtr u = MakeExpr(ExprKind::kUnion);
    u->children.push_back(std::move(first));
    while (Accept(TokenKind::kPipe)) {
      NATIX_ASSIGN_OR_RETURN(ExprPtr next, ParsePathExpr());
      u->children.push_back(std::move(next));
    }
    return u;
  }

  /// Whether the upcoming tokens start a FilterExpr (primary expression)
  /// rather than a location path.
  bool StartsFilterExpr() const {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable:
      case TokenKind::kLParen:
      case TokenKind::kLiteral:
      case TokenKind::kNumber:
        return true;
      case TokenKind::kName:
        // FunctionName '(' — but node-type names are node tests.
        return Peek(1).kind == TokenKind::kLParen && !IsNodeTypeName(t.text) &&
               !LookupAxis(t.text).has_value();
      default:
        return false;
    }
  }

  StatusOr<ExprPtr> ParsePathExpr() {
    if (!StartsFilterExpr()) return ParseLocationPath();

    NATIX_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimaryExpr());
    // Predicates make it a filter expression.
    if (Peek().kind == TokenKind::kLBracket) {
      ExprPtr filter = MakeExpr(ExprKind::kFilterExpr);
      filter->children.push_back(std::move(primary));
      while (Accept(TokenKind::kLBracket)) {
        NATIX_ASSIGN_OR_RETURN(ExprPtr predicate, ParseOrExpr());
        NATIX_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
        filter->predicates.push_back(std::move(predicate));
      }
      primary = std::move(filter);
    }
    // Optional trailing relative path: e/π or e//π.
    if (Peek().kind == TokenKind::kSlash ||
        Peek().kind == TokenKind::kDoubleSlash) {
      ExprPtr path = MakeExpr(ExprKind::kPathExpr);
      path->children.push_back(std::move(primary));
      if (Accept(TokenKind::kDoubleSlash)) {
        path->steps.push_back(DescendantOrSelfStep());
      } else {
        NATIX_RETURN_IF_ERROR(Expect(TokenKind::kSlash, "'/'"));
      }
      NATIX_RETURN_IF_ERROR(ParseRelativePathInto(&path->steps));
      return path;
    }
    return primary;
  }

  StatusOr<ExprPtr> ParsePrimaryExpr() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable: {
        ExprPtr e = MakeExpr(ExprKind::kVariable);
        e->name = Advance().text;
        return e;
      }
      case TokenKind::kLiteral: {
        ExprPtr e = MakeExpr(ExprKind::kStringLiteral);
        e->string_value = Advance().text;
        return e;
      }
      case TokenKind::kNumber: {
        ExprPtr e = MakeExpr(ExprKind::kNumberLiteral);
        e->number = Advance().number;
        return e;
      }
      case TokenKind::kLParen: {
        Advance();
        NATIX_ASSIGN_OR_RETURN(ExprPtr e, ParseOrExpr());
        NATIX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return e;
      }
      case TokenKind::kName: {
        ExprPtr e = MakeExpr(ExprKind::kFunctionCall);
        e->name = Advance().text;
        NATIX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        if (!Accept(TokenKind::kRParen)) {
          do {
            NATIX_ASSIGN_OR_RETURN(ExprPtr arg, ParseOrExpr());
            e->children.push_back(std::move(arg));
          } while (Accept(TokenKind::kComma));
          NATIX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        }
        return e;
      }
      default:
        return Error("expected a primary expression");
    }
  }

  static Step DescendantOrSelfStep() {
    Step step;
    step.axis = Axis::kDescendantOrSelf;
    step.test.kind = AstNodeTest::Kind::kAnyKind;
    return step;
  }

  StatusOr<ExprPtr> ParseLocationPath() {
    ExprPtr path = MakeExpr(ExprKind::kLocationPath);
    if (Accept(TokenKind::kDoubleSlash)) {
      path->absolute = true;
      path->steps.push_back(DescendantOrSelfStep());
      NATIX_RETURN_IF_ERROR(ParseRelativePathInto(&path->steps));
      return path;
    }
    if (Accept(TokenKind::kSlash)) {
      path->absolute = true;
      // "/" alone selects the document root.
      if (!StartsStep()) return path;
      NATIX_RETURN_IF_ERROR(ParseRelativePathInto(&path->steps));
      return path;
    }
    NATIX_RETURN_IF_ERROR(ParseRelativePathInto(&path->steps));
    return path;
  }

  bool StartsStep() const {
    switch (Peek().kind) {
      case TokenKind::kName:
      case TokenKind::kStar:
      case TokenKind::kAt:
      case TokenKind::kDot:
      case TokenKind::kDotDot:
        return true;
      default:
        return false;
    }
  }

  Status ParseRelativePathInto(std::vector<Step>* steps) {
    while (true) {
      NATIX_ASSIGN_OR_RETURN(Step step, ParseStep());
      steps->push_back(std::move(step));
      if (Accept(TokenKind::kDoubleSlash)) {
        steps->push_back(DescendantOrSelfStep());
        continue;
      }
      if (Accept(TokenKind::kSlash)) continue;
      return Status::OK();
    }
  }

  StatusOr<Step> ParseStep() {
    Step step;
    if (Accept(TokenKind::kDot)) {
      step.axis = Axis::kSelf;
      step.test.kind = AstNodeTest::Kind::kAnyKind;
      return step;
    }
    if (Accept(TokenKind::kDotDot)) {
      step.axis = Axis::kParent;
      step.test.kind = AstNodeTest::Kind::kAnyKind;
      return step;
    }
    if (Accept(TokenKind::kAt)) {
      step.axis = Axis::kAttribute;
    } else if (Peek().kind == TokenKind::kName &&
               Peek(1).kind == TokenKind::kDoubleColon) {
      const std::string& axis_name = Peek().text;
      if (axis_name == "namespace") {
        return Status::NotSupported(
            "the namespace axis is not supported (namespace nodes are not "
            "materialized)");
      }
      std::optional<Axis> axis = LookupAxis(axis_name);
      if (!axis.has_value()) {
        return Error("unknown axis '" + axis_name + "'");
      }
      step.axis = *axis;
      Advance();  // axis name
      Advance();  // '::'
    } else {
      step.axis = Axis::kChild;
    }
    NATIX_ASSIGN_OR_RETURN(step.test, ParseNodeTest());
    while (Accept(TokenKind::kLBracket)) {
      NATIX_ASSIGN_OR_RETURN(ExprPtr predicate, ParseOrExpr());
      NATIX_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
      step.predicates.push_back(std::move(predicate));
    }
    return step;
  }

  StatusOr<AstNodeTest> ParseNodeTest() {
    AstNodeTest test;
    if (Accept(TokenKind::kStar)) {
      test.kind = AstNodeTest::Kind::kAnyName;
      return test;
    }
    if (Peek().kind != TokenKind::kName) {
      return Error("expected a node test");
    }
    std::string name = Advance().text;
    if (Peek().kind == TokenKind::kLParen && IsNodeTypeName(name)) {
      Advance();  // '('
      if (name == "node") {
        test.kind = AstNodeTest::Kind::kAnyKind;
      } else if (name == "text") {
        test.kind = AstNodeTest::Kind::kText;
      } else if (name == "comment") {
        test.kind = AstNodeTest::Kind::kComment;
      } else {  // processing-instruction, optional target literal
        if (Peek().kind == TokenKind::kLiteral) {
          test.kind = AstNodeTest::Kind::kPiTarget;
          test.name = Advance().text;
        } else {
          test.kind = AstNodeTest::Kind::kPi;
        }
      }
      NATIX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return test;
    }
    test.kind = AstNodeTest::Kind::kName;
    test.name = std::move(name);
    return test;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ExprPtr> ParseXPath(std::string_view query) {
  obs::ScopedSpan span("compile/parse");
  NATIX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace natix::xpath
