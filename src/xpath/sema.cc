#include "xpath/sema.h"

#include <utility>

#include "obs/trace.h"
#include "xpath/functions.h"

namespace natix::xpath {

namespace {

ExprPtr MakeSelfNodePath() {
  ExprPtr path = MakeExpr(ExprKind::kLocationPath);
  Step step;
  step.axis = runtime::Axis::kSelf;
  step.test.kind = AstNodeTest::Kind::kAnyKind;
  path->steps.push_back(std::move(step));
  path->type = ExprType::kNodeSet;
  return path;
}

ExprPtr MakeResolvedCall(FunctionId id, ExprPtr arg) {
  const FunctionInfo& info = FunctionInfoFor(id);
  ExprPtr call = MakeExpr(ExprKind::kFunctionCall);
  call->name = info.name;
  call->function_id = static_cast<int>(id);
  call->type = info.result_type;
  call->children.push_back(std::move(arg));
  return call;
}

class Analyzer {
 public:
  Status Run(Expr* root) { return AnalyzeExpr(root); }

 private:
  /// Wraps `*slot` in a conversion call so its static type becomes
  /// `target` (one of string/number/boolean). No-op when already typed
  /// so. Unknown-typed operands (variables) are wrapped too: the
  /// conversion functions accept any runtime type.
  void Convert(ExprPtr* slot, ExprType target) {
    if ((*slot)->type == target) return;
    FunctionId id;
    switch (target) {
      case ExprType::kString:
        id = FunctionId::kString;
        break;
      case ExprType::kNumber:
        id = FunctionId::kNumber;
        break;
      case ExprType::kBoolean:
        id = FunctionId::kBoolean;
        break;
      default:
        return;
    }
    *slot = MakeResolvedCall(id, std::move(*slot));
  }

  Status AnalyzePredicates(std::vector<ExprPtr>* predicates) {
    for (ExprPtr& predicate : *predicates) {
      NATIX_RETURN_IF_ERROR(AnalyzeExpr(predicate.get()));
      if (predicate->type == ExprType::kNumber) {
        // PredicateExpr of type number: true iff position() equals it.
        ExprPtr position = MakeExpr(ExprKind::kFunctionCall);
        position->name = "position";
        position->function_id = static_cast<int>(FunctionId::kPosition);
        position->type = ExprType::kNumber;
        ExprPtr cmp = MakeExpr(ExprKind::kBinary);
        cmp->op = BinaryOp::kEq;
        cmp->type = ExprType::kBoolean;
        cmp->children.push_back(std::move(position));
        cmp->children.push_back(std::move(predicate));
        predicate = std::move(cmp);
      } else if (predicate->type != ExprType::kBoolean) {
        // Everything else converts through boolean(); for node sets this
        // becomes the internal exists() aggregate during translation.
        Convert(&predicate, ExprType::kBoolean);
      }
    }
    return Status::OK();
  }

  Status AnalyzeSteps(std::vector<Step>* steps) {
    for (Step& step : *steps) {
      NATIX_RETURN_IF_ERROR(AnalyzePredicates(&step.predicates));
    }
    return Status::OK();
  }

  Status AnalyzeCall(Expr* e) {
    const FunctionInfo* info = LookupFunction(e->name);
    if (info == nullptr) {
      return Status::InvalidArgument("unknown function '" + e->name + "()'");
    }
    int argc = static_cast<int>(e->children.size());
    if (argc < info->min_args ||
        (info->max_args >= 0 && argc > info->max_args)) {
      return Status::InvalidArgument(
          "wrong number of arguments to '" + e->name + "()': got " +
          std::to_string(argc));
    }
    e->function_id = static_cast<int>(info->id);
    e->type = info->result_type;
    for (ExprPtr& arg : e->children) {
      NATIX_RETURN_IF_ERROR(AnalyzeExpr(arg.get()));
    }

    auto require_node_set_arg = [&](size_t index) -> Status {
      const Expr& arg = *e->children[index];
      if (arg.type == ExprType::kNodeSet) return Status::OK();
      if (arg.type == ExprType::kUnknown) {
        return Status::NotSupported(
            "variables holding node-sets are not supported ('" + e->name +
            "()' argument)");
      }
      return Status::InvalidArgument("'" + e->name +
                                     "()' requires a node-set argument");
    };

    switch (info->id) {
      case FunctionId::kLast:
      case FunctionId::kPosition:
      case FunctionId::kTrue:
      case FunctionId::kFalse:
        break;
      case FunctionId::kCount:
      case FunctionId::kSum:
        NATIX_RETURN_IF_ERROR(require_node_set_arg(0));
        break;
      case FunctionId::kId:
        break;  // both node-set and atomic inputs are valid (Sec. 3.6.3)
      case FunctionId::kLocalName:
      case FunctionId::kNamespaceUri:
      case FunctionId::kName:
        if (e->children.empty()) {
          e->children.push_back(MakeSelfNodePath());
        } else {
          NATIX_RETURN_IF_ERROR(require_node_set_arg(0));
        }
        break;
      case FunctionId::kString:
      case FunctionId::kNumber:
        if (e->children.empty()) e->children.push_back(MakeSelfNodePath());
        break;
      case FunctionId::kStringLength:
      case FunctionId::kNormalizeSpace:
        if (e->children.empty()) {
          e->children.push_back(
              MakeResolvedCall(FunctionId::kString, MakeSelfNodePath()));
        } else {
          Convert(&e->children[0], ExprType::kString);
        }
        break;
      case FunctionId::kConcat:
      case FunctionId::kStartsWith:
      case FunctionId::kContains:
      case FunctionId::kSubstringBefore:
      case FunctionId::kSubstringAfter:
      case FunctionId::kTranslate:
        for (ExprPtr& arg : e->children) Convert(&arg, ExprType::kString);
        break;
      case FunctionId::kSubstring:
        Convert(&e->children[0], ExprType::kString);
        Convert(&e->children[1], ExprType::kNumber);
        if (e->children.size() == 3) {
          Convert(&e->children[2], ExprType::kNumber);
        }
        break;
      case FunctionId::kBoolean:
        break;  // accepts any type
      case FunctionId::kNot:
        Convert(&e->children[0], ExprType::kBoolean);
        break;
      case FunctionId::kLang:
        Convert(&e->children[0], ExprType::kString);
        break;
      case FunctionId::kFloor:
      case FunctionId::kCeiling:
      case FunctionId::kRound:
        Convert(&e->children[0], ExprType::kNumber);
        break;
      case FunctionId::kExistsInternal:
      case FunctionId::kMaxInternal:
      case FunctionId::kMinInternal:
      case FunctionId::kRootInternal:
      case FunctionId::kUnknown:
        return Status::Internal("unexpected internal function in source");
    }
    return Status::OK();
  }

  Status AnalyzeExpr(Expr* e) {
    switch (e->kind) {
      case ExprKind::kNumberLiteral:
        e->type = ExprType::kNumber;
        return Status::OK();
      case ExprKind::kBooleanLiteral:
        e->type = ExprType::kBoolean;
        return Status::OK();
      case ExprKind::kStringLiteral:
        e->type = ExprType::kString;
        return Status::OK();
      case ExprKind::kVariable:
        e->type = ExprType::kUnknown;  // bound at execution time
        return Status::OK();
      case ExprKind::kFunctionCall:
        return AnalyzeCall(e);
      case ExprKind::kNegate:
        NATIX_RETURN_IF_ERROR(AnalyzeExpr(e->children[0].get()));
        Convert(&e->children[0], ExprType::kNumber);
        e->type = ExprType::kNumber;
        return Status::OK();
      case ExprKind::kBinary: {
        NATIX_RETURN_IF_ERROR(AnalyzeExpr(e->children[0].get()));
        NATIX_RETURN_IF_ERROR(AnalyzeExpr(e->children[1].get()));
        switch (e->op) {
          case BinaryOp::kOr:
          case BinaryOp::kAnd:
            Convert(&e->children[0], ExprType::kBoolean);
            Convert(&e->children[1], ExprType::kBoolean);
            e->type = ExprType::kBoolean;
            break;
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kDiv:
          case BinaryOp::kMod:
            Convert(&e->children[0], ExprType::kNumber);
            Convert(&e->children[1], ExprType::kNumber);
            e->type = ExprType::kNumber;
            break;
          case BinaryOp::kEq:
          case BinaryOp::kNe:
          case BinaryOp::kLt:
          case BinaryOp::kLe:
          case BinaryOp::kGt:
          case BinaryOp::kGe:
            // Node-set comparisons keep their operands (existential
            // semantics handled by the translator, Sec. 3.6.2); atomic
            // comparisons promote at runtime.
            e->type = ExprType::kBoolean;
            break;
        }
        return Status::OK();
      }
      case ExprKind::kUnion: {
        for (ExprPtr& child : e->children) {
          NATIX_RETURN_IF_ERROR(AnalyzeExpr(child.get()));
          if (child->type != ExprType::kNodeSet) {
            return Status::InvalidArgument(
                "operands of '|' must be node-sets");
          }
        }
        e->type = ExprType::kNodeSet;
        return Status::OK();
      }
      case ExprKind::kLocationPath:
        NATIX_RETURN_IF_ERROR(AnalyzeSteps(&e->steps));
        e->type = ExprType::kNodeSet;
        return Status::OK();
      case ExprKind::kPathExpr: {
        NATIX_RETURN_IF_ERROR(AnalyzeExpr(e->children[0].get()));
        if (e->children[0]->type != ExprType::kNodeSet) {
          if (e->children[0]->type == ExprType::kUnknown) {
            return Status::NotSupported(
                "variables holding node-sets are not supported (path "
                "expression base)");
          }
          return Status::InvalidArgument(
              "the base of a path expression must be a node-set");
        }
        NATIX_RETURN_IF_ERROR(AnalyzeSteps(&e->steps));
        e->type = ExprType::kNodeSet;
        return Status::OK();
      }
      case ExprKind::kFilterExpr: {
        NATIX_RETURN_IF_ERROR(AnalyzeExpr(e->children[0].get()));
        if (e->children[0]->type != ExprType::kNodeSet) {
          if (e->children[0]->type == ExprType::kUnknown) {
            return Status::NotSupported(
                "variables holding node-sets are not supported (filter "
                "expression base)");
          }
          return Status::InvalidArgument(
              "predicates can only filter node-sets");
        }
        NATIX_RETURN_IF_ERROR(AnalyzePredicates(&e->predicates));
        e->type = ExprType::kNodeSet;
        return Status::OK();
      }
    }
    return Status::Internal("unknown expression kind");
  }
};

}  // namespace

Status Analyze(Expr* root) {
  obs::ScopedSpan span("compile/sema");
  Analyzer analyzer;
  return analyzer.Run(root);
}

}  // namespace natix::xpath
