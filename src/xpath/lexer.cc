#include "xpath/lexer.h"

#include <cctype>
#include <cstdlib>

namespace natix::xpath {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

// NCName chars plus ':' (QNames are kept as single literal names; this
// build performs no namespace processing).
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.' || c == ':';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

Status LexError(size_t pos, std::string_view message) {
  return Status::InvalidArgument("XPath lex error at offset " +
                                 std::to_string(pos) + ": " +
                                 std::string(message));
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t pos, std::string text = "",
                  double number = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.number = number;
    t.position = pos;
    tokens.push_back(std::move(t));
  };

  while (i < input.size()) {
    char c = input[i];
    size_t pos = i;
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, pos);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, pos);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, pos);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, pos);
        ++i;
        continue;
      case '@':
        push(TokenKind::kAt, pos);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, pos);
        ++i;
        continue;
      case '|':
        push(TokenKind::kPipe, pos);
        ++i;
        continue;
      case '+':
        push(TokenKind::kPlus, pos);
        ++i;
        continue;
      case '-':
        // '-' inside a name is consumed by the name scanner below; a
        // freestanding '-' is the minus operator.
        push(TokenKind::kMinus, pos);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, pos);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, pos);
        ++i;
        continue;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kNe, pos);
          i += 2;
          continue;
        }
        return LexError(pos, "'!' is only valid as part of '!='");
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kLe, pos);
          i += 2;
        } else {
          push(TokenKind::kLt, pos);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kGe, pos);
          i += 2;
        } else {
          push(TokenKind::kGt, pos);
          ++i;
        }
        continue;
      case '/':
        if (i + 1 < input.size() && input[i + 1] == '/') {
          push(TokenKind::kDoubleSlash, pos);
          i += 2;
        } else {
          push(TokenKind::kSlash, pos);
          ++i;
        }
        continue;
      case ':':
        if (i + 1 < input.size() && input[i + 1] == ':') {
          push(TokenKind::kDoubleColon, pos);
          i += 2;
          continue;
        }
        return LexError(pos, "unexpected ':'");
      case '.':
        if (i + 1 < input.size() && input[i + 1] == '.') {
          push(TokenKind::kDotDot, pos);
          i += 2;
          continue;
        }
        if (i + 1 < input.size() && IsDigit(input[i + 1])) {
          break;  // ".5" style number, handled below
        }
        push(TokenKind::kDot, pos);
        ++i;
        continue;
      case '$': {
        ++i;
        if (i >= input.size() || !IsNameStart(input[i])) {
          return LexError(pos, "expected variable name after '$'");
        }
        size_t begin = i;
        while (i < input.size() && IsNameChar(input[i])) ++i;
        push(TokenKind::kVariable, pos,
             std::string(input.substr(begin, i - begin)));
        continue;
      }
      case '\'':
      case '"': {
        char quote = c;
        ++i;
        size_t begin = i;
        while (i < input.size() && input[i] != quote) ++i;
        if (i >= input.size()) return LexError(pos, "unterminated literal");
        push(TokenKind::kLiteral, pos,
             std::string(input.substr(begin, i - begin)));
        ++i;
        continue;
      }
      default:
        break;
    }

    if (IsDigit(c) || c == '.') {
      size_t begin = i;
      while (i < input.size() && IsDigit(input[i])) ++i;
      if (i < input.size() && input[i] == '.') {
        ++i;
        while (i < input.size() && IsDigit(input[i])) ++i;
      }
      std::string text(input.substr(begin, i - begin));
      push(TokenKind::kNumber, pos, text, std::strtod(text.c_str(), nullptr));
      continue;
    }
    if (IsNameStart(c)) {
      size_t begin = i;
      while (i < input.size() && IsNameChar(input[i])) {
        // Stop before "::" (axis separator) and ":*" so "axis::test" and
        // "prefix:*" lex as separate tokens. A single ':' inside a QName
        // is kept (no namespace processing; names match literally).
        if (input[i] == ':' && i + 1 < input.size() &&
            (input[i + 1] == ':' || input[i + 1] == '*')) {
          break;
        }
        ++i;
      }
      // A name also must not end in ':'.
      size_t end = i;
      while (end > begin && input[end - 1] == ':') --end;
      i = end;
      push(TokenKind::kName, pos, std::string(input.substr(begin, end - begin)));
      continue;
    }
    return LexError(pos, std::string("unexpected character '") + c + "'");
  }
  push(TokenKind::kEnd, input.size());
  return tokens;
}

}  // namespace natix::xpath
