#ifndef NATIX_XPATH_NORMALIZER_H_
#define NATIX_XPATH_NORMALIZER_H_

#include "xpath/ast.h"

namespace natix::xpath {

/// Normalization (step 2 of the compiler pipeline, Sec. 5.1): classifies
/// every predicate of every location step and filter expression
/// (Sec. 3.3 / 4.3):
///
///  * does it call position()? last()? (not counting calls belonging to
///    nested predicate contexts),
///  * does it contain a nested location path,
///  * is it cheap or expensive to evaluate (the simple instruction-count
///    cost model of Sec. 4.3.2: a clause is expensive when it must
///    evaluate a nested path).
///
/// The results are stored in the predicate_info vectors, parallel to the
/// predicate lists. Run after semantic analysis (the position() rewrite
/// for number predicates must have happened).
void Normalize(Expr* root);

/// Classification of a single predicate (or conjunct thereof).
PredicateInfo AnalyzePredicate(const Expr& predicate);

}  // namespace natix::xpath

#endif  // NATIX_XPATH_NORMALIZER_H_
