#include "xpath/ast.h"

#include "base/xpath_number.h"

namespace natix::xpath {

const char* ExprTypeName(ExprType type) {
  switch (type) {
    case ExprType::kUnknown:
      return "unknown";
    case ExprType::kNodeSet:
      return "node-set";
    case ExprType::kBoolean:
      return "boolean";
    case ExprType::kNumber:
      return "number";
    case ExprType::kString:
      return "string";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "div";
    case BinaryOp::kMod:
      return "mod";
  }
  return "?";
}

std::string AstNodeTest::ToString() const {
  switch (kind) {
    case Kind::kName:
      return name;
    case Kind::kAnyName:
      return "*";
    case Kind::kText:
      return "text()";
    case Kind::kComment:
      return "comment()";
    case Kind::kPi:
      return "processing-instruction()";
    case Kind::kPiTarget:
      return "processing-instruction('" + name + "')";
    case Kind::kAnyKind:
      return "node()";
  }
  return "?";
}

namespace {

std::string StepToString(const Step& step) {
  std::string out = std::string(runtime::AxisName(step.axis)) +
                    "::" + step.test.ToString();
  for (const ExprPtr& p : step.predicates) out += "[" + p->ToString() + "]";
  return out;
}

std::string StepsToString(const std::vector<Step>& steps, bool absolute) {
  std::string out = absolute ? "/" : "";
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += "/";
    out += StepToString(steps[i]);
  }
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kNumberLiteral:
      return XPathNumberToString(number);
    case ExprKind::kBooleanLiteral:
      return boolean ? "true()" : "false()";
    case ExprKind::kStringLiteral:
      return "'" + string_value + "'";
    case ExprKind::kVariable:
      return "$" + name;
    case ExprKind::kFunctionCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kNegate:
      return "-(" + children[0]->ToString() + ")";
    case ExprKind::kUnion: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " | ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kLocationPath:
      return StepsToString(steps, absolute);
    case ExprKind::kPathExpr:
      return children[0]->ToString() + "/" + StepsToString(steps, false);
    case ExprKind::kFilterExpr: {
      std::string out = children[0]->ToString();
      for (const ExprPtr& p : predicates) out += "[" + p->ToString() + "]";
      return out;
    }
  }
  return "?";
}

ExprPtr MakeExpr(ExprKind kind) { return std::make_unique<Expr>(kind); }

ExprPtr CloneExpr(const Expr& e) {
  ExprPtr out = MakeExpr(e.kind);
  out->number = e.number;
  out->boolean = e.boolean;
  out->function_id = e.function_id;
  out->string_value = e.string_value;
  out->name = e.name;
  out->op = e.op;
  out->absolute = e.absolute;
  out->type = e.type;
  out->predicate_info = e.predicate_info;
  for (const ExprPtr& child : e.children) {
    out->children.push_back(CloneExpr(*child));
  }
  for (const ExprPtr& p : e.predicates) {
    out->predicates.push_back(CloneExpr(*p));
  }
  for (const Step& step : e.steps) {
    Step copy;
    copy.axis = step.axis;
    copy.test = step.test;
    copy.predicate_info = step.predicate_info;
    for (const ExprPtr& p : step.predicates) {
      copy.predicates.push_back(CloneExpr(*p));
    }
    out->steps.push_back(std::move(copy));
  }
  return out;
}

}  // namespace natix::xpath
