#ifndef NATIX_XPATH_FUNCTIONS_H_
#define NATIX_XPATH_FUNCTIONS_H_

#include <string_view>

#include "xpath/ast.h"

namespace natix::xpath {

/// The XPath 1.0 core function library (recommendation Sec. 4), plus the
/// internal functions the compiler introduces: conversions inserted by
/// semantic analysis and the aggregate functions of Sec. 3.6.2 of the
/// paper (exists, max, min).
enum class FunctionId : uint8_t {
  // Node-set functions.
  kLast,
  kPosition,
  kCount,
  kId,
  kLocalName,
  kNamespaceUri,
  kName,
  // String functions.
  kString,
  kConcat,
  kStartsWith,
  kContains,
  kSubstringBefore,
  kSubstringAfter,
  kSubstring,
  kStringLength,
  kNormalizeSpace,
  kTranslate,
  // Boolean functions.
  kBoolean,
  kNot,
  kTrue,
  kFalse,
  kLang,
  // Number functions.
  kNumber,
  kSum,
  kFloor,
  kCeiling,
  kRound,
  // Internal aggregates (not user-callable; Sec. 3.6.2).
  kExistsInternal,
  kMaxInternal,
  kMinInternal,
  /// Internal: root(node) — the document node of a node's document, used
  /// for absolute paths (Sec. 3.1.2).
  kRootInternal,

  kUnknown
};

struct FunctionInfo {
  FunctionId id = FunctionId::kUnknown;
  const char* name = "";
  int min_args = 0;
  int max_args = 0;  // -1 = unbounded (concat)
  ExprType result_type = ExprType::kUnknown;
  /// Index of the first argument that must stay a node set (no implicit
  /// conversion), or -1. count/sum/id take node-set input.
  bool node_set_input = false;
};

/// Looks up a core-library function by name; nullptr when unknown.
/// Internal functions are not found by name.
const FunctionInfo* LookupFunction(std::string_view name);

/// Metadata for any id, including internal functions.
const FunctionInfo& FunctionInfoFor(FunctionId id);

}  // namespace natix::xpath

#endif  // NATIX_XPATH_FUNCTIONS_H_
