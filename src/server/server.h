#ifndef NATIX_SERVER_SERVER_H_
#define NATIX_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/database.h"
#include "base/status.h"
#include "server/http.h"

// natixd's serving core: a multi-tenant HTTP/1.1 query daemon over one
// Database — thread-per-connection with keep-alive, an admission
// semaphore bounding concurrent executions, per-request deadlines with
// cooperative pipeline cancellation, and the observability plane
// (/metrics Prometheus exposition, /statusz JSON introspection).
//
// Endpoints:
//   /healthz                         liveness ("ok")
//   /metrics                         Prometheus text exposition 0.0.4
//                                    ({"disabled":true} under
//                                    NATIX_OBS=OFF)
//   /statusz                         JSON: admission state, plan cache,
//                                    buffer-pool shards, slow queries
//   /query?doc=D&q=XP[&limit=N]      evaluate XPath XP against document
//         [&deadline_ms=M]           D; mode=values|xml|count (default
//         [&mode=values|xml|count]   values); limit caps the node-set
//                                    through the plan's Limit operator
//                                    (early pipeline close), deadline_ms
//                                    bounds queue wait + execution.
//
// The request lifecycle is traced as spans server/parse, server/queue,
// server/exec, server/serialize under one server/request root, and
// feeds the registry's queue_wait_ns histogram, queue_depth /
// requests_in_flight gauges and http_requests / requests_rejected /
// deadline_exceeded / queries_cancelled counters.

namespace natix::server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back
  /// through Server::port()).
  uint16_t port = 0;
  /// Executions allowed to run concurrently (admission semaphore).
  size_t max_concurrency = 4;
  /// Requests allowed to wait for an execution slot; one more is
  /// rejected with 503.
  size_t queue_capacity = 16;
  /// Concurrently open connections; further accepts are turned away.
  size_t max_connections = 128;
  /// Default per-request budget (queue wait + execution) when the
  /// request carries no deadline_ms parameter. 0 = no deadline.
  uint64_t default_deadline_ms = 0;
  /// Keep-alive socket read timeout.
  int idle_timeout_ms = 30000;
  /// Instantiate executions with per-operator stats so slow-query log
  /// entries carry EXPLAIN ANALYZE trees (costs per-next counters).
  bool collect_stats = false;
};

/// The daemon. Start() spawns the acceptor; Shutdown() cancels in-
/// flight executions (cooperatively, through their cancel flag), closes
/// every connection and joins all threads. The Database must outlive
/// the server and is not mutated (documents load before Start).
class Server {
 public:
  Server(Database* db, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:port and starts accepting.
  Status Start();

  /// Stops accepting, cancels and joins everything. Idempotent.
  void Shutdown();

  /// The bound port (after Start).
  int port() const { return port_; }

  /// Requests fully served (any endpoint, any outcome).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Renderings behind /metrics and /statusz, exposed for in-process
  // tests (no socket needed).
  std::string RenderMetrics() const;
  std::string RenderStatus() const;

 private:
  enum class AdmitResult { kAdmitted, kRejected, kDeadlineExpired,
                           kShutdown };

  void AcceptLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);
  HttpResponse HandleQuery(const HttpRequest& request);

  /// Blocks until an execution slot frees up, the deadline passes, or
  /// the queue is full. Records queue_wait_ns and maintains the
  /// queue_depth gauge. `deadline_ns` of 0 waits indefinitely.
  AdmitResult Admit(uint64_t deadline_ns);
  void Release();

  Database* db_;
  ServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<size_t> open_connections_{0};
  std::atomic<uint64_t> start_ns_{0};

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t executing_ = 0;
  size_t waiting_ = 0;

  std::mutex conn_mu_;
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::thread acceptor_;
};

}  // namespace natix::server

#endif  // NATIX_SERVER_SERVER_H_
