#ifndef NATIX_SERVER_HTTP_H_
#define NATIX_SERVER_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/statusor.h"

// A deliberately minimal HTTP/1.1 subset for the natixd serving plane:
// GET/HEAD/POST with Content-Length framing (no chunked encoding, no
// TLS, no multiplexing), keep-alive by default. Enough for curl,
// Prometheus scrapes and the closed-loop load generator — not a general
// web server.

namespace natix::server {

/// One parsed request. Header names are lower-cased; query parameters
/// and the path are percent-decoded.
struct HttpRequest {
  std::string method;
  std::string target;  ///< raw request target as sent ("/query?q=...")
  std::string path;    ///< decoded path without the query string
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  /// First query parameter named `name`, or null.
  const std::string* Param(std::string_view name) const;
  /// Header by (lower-case) name, or null.
  const std::string* Header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Percent-decodes `s`; '+' decodes to a space (form encoding).
std::string UrlDecode(std::string_view s);
/// Percent-encodes everything outside the RFC 3986 unreserved set.
std::string UrlEncode(std::string_view s);

/// The canonical reason phrase ("OK", "Not Found", ...).
const char* StatusReason(int status);

/// Reads and parses one request off `fd` (blocking; honors any
/// SO_RCVTIMEO set by the caller). Distinguished failures:
///  - kCancelled: the peer closed the connection cleanly before sending
///    a request (normal end of a keep-alive session),
///  - kDeadlineExceeded: the socket read timed out,
///  - kInvalidArgument: malformed or oversized request,
///  - kIOError: any other socket error.
Status ReadHttpRequest(int fd, HttpRequest* request);

/// Serializes `response` (status line, Content-Type, Content-Length,
/// Connection) and writes it fully to `fd`.
Status WriteHttpResponse(int fd, const HttpResponse& response,
                         bool keep_alive);

/// A blocking keep-alive client for tests and bench_serving: one
/// connection, lock-step request/response.
class HttpClient {
 public:
  /// Prepares a client for 127.0.0.1:`port`; connects on first use.
  explicit HttpClient(int port) : port_(port) {}
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// GETs `target` (raw, already-encoded). Reconnects once if the
  /// server closed the keep-alive connection.
  StatusOr<HttpResponse> Get(const std::string& target);

  void Close();

 private:
  Status Connect();
  StatusOr<HttpResponse> GetOnce(const std::string& target);

  int port_;
  int fd_ = -1;
};

}  // namespace natix::server

#endif  // NATIX_SERVER_HTTP_H_
