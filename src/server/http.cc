#include "server/http.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace natix::server {

namespace {

// Hard limits: a request that exceeds them is malformed, not big.
constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Receives until `marker` appears in `*buffer` or the size cap trips.
/// Classifies socket failures like ReadHttpRequest documents.
Status RecvUntil(int fd, std::string_view marker, std::string* buffer,
                 size_t max_bytes) {
  char chunk[4096];
  while (buffer->find(marker) == std::string::npos) {
    if (buffer->size() > max_bytes) {
      return Status::InvalidArgument("http: header block too large");
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      if (buffer->empty()) {
        return Status::Cancelled("http: connection closed");
      }
      return Status::InvalidArgument("http: truncated request");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("http: socket read timed out");
      }
      if (buffer->empty() && (errno == ECONNRESET || errno == EPIPE)) {
        return Status::Cancelled("http: connection reset");
      }
      return Status::IOError("http: recv failed");
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return Status::OK();
}

/// Receives exactly `want` further bytes into `*buffer`.
Status RecvExact(int fd, size_t want, std::string* buffer) {
  char chunk[4096];
  while (buffer->size() < want) {
    size_t need = std::min(want - buffer->size(), sizeof(chunk));
    ssize_t n = ::recv(fd, chunk, need, 0);
    if (n == 0) return Status::InvalidArgument("http: truncated body");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("http: socket read timed out");
      }
      return Status::IOError("http: recv failed");
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return Status::OK();
}

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("http: send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Splits the raw target into the decoded path and decoded parameters.
void ParseTarget(std::string_view target, HttpRequest* request) {
  size_t qpos = target.find('?');
  request->path = UrlDecode(target.substr(0, qpos));
  if (qpos == std::string_view::npos) return;
  std::string_view query = target.substr(qpos + 1);
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view()
                                          : query.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string name = UrlDecode(pair.substr(0, eq));
    std::string value =
        eq == std::string_view::npos ? "" : UrlDecode(pair.substr(eq + 1));
    request->params.emplace_back(std::move(name), std::move(value));
  }
}

/// Parses the header lines after the start line into `headers`.
Status ParseHeaderLines(std::string_view block,
                        std::vector<std::pair<std::string, std::string>>*
                            headers) {
  while (!block.empty()) {
    size_t eol = block.find("\r\n");
    std::string_view line = block.substr(0, eol);
    block = eol == std::string_view::npos ? std::string_view()
                                          : block.substr(eol + 2);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("http: malformed header line");
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    headers->emplace_back(ToLower(line.substr(0, colon)),
                          std::string(value));
  }
  return Status::OK();
}

/// Reads Content-Length bytes of body that follow `headers_end` in
/// `*buffer` (the header recv may have over-read into the body).
Status ReadBody(int fd,
                const std::vector<std::pair<std::string, std::string>>&
                    headers,
                std::string* buffer, size_t body_begin, std::string* body) {
  size_t content_length = 0;
  for (const auto& [name, value] : headers) {
    if (name == "content-length") {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' ||
          parsed > kMaxBodyBytes) {
        return Status::InvalidArgument("http: bad Content-Length");
      }
      content_length = static_cast<size_t>(parsed);
    }
  }
  std::string rest = buffer->substr(body_begin);
  if (rest.size() < content_length) {
    NATIX_RETURN_IF_ERROR(RecvExact(fd, content_length, &rest));
  }
  *body = rest.substr(0, content_length);
  return Status::OK();
}

}  // namespace

const std::string* HttpRequest::Param(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

const std::string* HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      int hi = HexValue(s[i + 1]);
      int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UrlEncode(std::string_view s) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    bool unreserved = (u >= 'a' && u <= 'z') || (u >= 'A' && u <= 'Z') ||
                      (u >= '0' && u <= '9') || u == '-' || u == '_' ||
                      u == '.' || u == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    }
  }
  return out;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

Status ReadHttpRequest(int fd, HttpRequest* request) {
  *request = HttpRequest();
  std::string buffer;
  NATIX_RETURN_IF_ERROR(
      RecvUntil(fd, "\r\n\r\n", &buffer, kMaxHeaderBytes));
  size_t headers_end = buffer.find("\r\n\r\n");
  std::string_view head(buffer.data(), headers_end);

  size_t line_end = head.find("\r\n");
  std::string_view start_line = head.substr(0, line_end);
  size_t sp1 = start_line.find(' ');
  size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : start_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return Status::InvalidArgument("http: malformed request line");
  }
  request->method = std::string(start_line.substr(0, sp1));
  request->target = std::string(start_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = start_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("http: unsupported protocol version");
  }
  ParseTarget(request->target, request);

  std::string_view header_block =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 2);
  NATIX_RETURN_IF_ERROR(ParseHeaderLines(header_block, &request->headers));

  // HTTP/1.1 defaults to keep-alive; 1.0 to close.
  request->keep_alive = version == "HTTP/1.1";
  if (const std::string* connection = request->Header("connection")) {
    std::string value = ToLower(*connection);
    if (value == "close") request->keep_alive = false;
    if (value == "keep-alive") request->keep_alive = true;
  }

  return ReadBody(fd, request->headers, &buffer, headers_end + 4,
                  &request->body);
}

Status WriteHttpResponse(int fd, const HttpResponse& response,
                         bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 160);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return SendAll(fd, out);
}

Status HttpClient::Connect() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IOError("http: socket failed");
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct timeval timeout;
  timeout.tv_sec = 30;
  timeout.tv_usec = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return Status::IOError("http: connect failed");
  }
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<HttpResponse> HttpClient::GetOnce(const std::string& target) {
  std::string request = "GET " + target +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: keep-alive\r\n\r\n";
  NATIX_RETURN_IF_ERROR(SendAll(fd_, request));

  std::string buffer;
  NATIX_RETURN_IF_ERROR(
      RecvUntil(fd_, "\r\n\r\n", &buffer, kMaxHeaderBytes));
  size_t headers_end = buffer.find("\r\n\r\n");
  std::string_view head(buffer.data(), headers_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line = head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos) {
    return Status::InvalidArgument("http: malformed status line");
  }
  HttpResponse response;
  response.status =
      std::atoi(std::string(status_line.substr(sp + 1)).c_str());

  std::vector<std::pair<std::string, std::string>> headers;
  std::string_view header_block =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 2);
  NATIX_RETURN_IF_ERROR(ParseHeaderLines(header_block, &headers));
  for (const auto& [name, value] : headers) {
    if (name == "content-type") response.content_type = value;
  }
  NATIX_RETURN_IF_ERROR(ReadBody(fd_, headers, &buffer, headers_end + 4,
                                 &response.body));
  return response;
}

StatusOr<HttpResponse> HttpClient::Get(const std::string& target) {
  if (fd_ < 0) NATIX_RETURN_IF_ERROR(Connect());
  StatusOr<HttpResponse> response = GetOnce(target);
  if (response.ok()) return response;
  // The server may have dropped an idle keep-alive connection between
  // requests; one reconnect covers that without retrying real errors
  // mid-exchange.
  NATIX_RETURN_IF_ERROR(Connect());
  return GetOnce(target);
}

}  // namespace natix::server
