#include "server/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "base/clock.h"
#include "obs/lock_ledger.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "xml/writer.h"

namespace natix::server {

namespace {

/// JSON string escaping for query text, values and error messages.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(int status, uint64_t id, const Status& error) {
  std::string body = "{\"id\":" + std::to_string(id) + ",\"code\":\"" +
                     StatusCodeName(error.code()) + "\",\"error\":\"" +
                     JsonEscape(error.message()) + "\"}\n";
  return JsonResponse(status, std::move(body));
}

/// HTTP status for a failed evaluation, by Status code.
int HttpStatusFor(const Status& error) {
  switch (error.code()) {
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kCancelled: return 503;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotSupported: return 400;
    case StatusCode::kResourceExhausted: return 503;
    default: return 500;
  }
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

std::chrono::steady_clock::time_point SteadyFromNanos(uint64_t ns) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(ns)));
}

void SetSocketTimeout(int fd, int millis) {
  struct timeval timeout;
  timeout.tv_sec = millis / 1000;
  timeout.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
}

}  // namespace

Server::Server(Database* db, const ServerOptions& options)
    : db_(db), options_(options) {
  if (options_.max_concurrency == 0) options_.max_concurrency = 1;
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("server: socket failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  // Loopback only: natixd has no authentication; exposure beyond the
  // host belongs to a fronting proxy.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("server: bind failed (port in use?)");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("server: listen failed");
  }
  start_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
  acceptor_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::Shutdown() {
  // Only the first caller tears down; repeats are no-ops (the tear-down
  // below joins every thread before the first call returns, and Server
  // lifetime is single-owner, so repeats come after it finished).
  if (shutdown_.exchange(true)) return;
  admission_cv_.notify_all();
  if (listen_fd_ >= 0) {
    // shutdown() breaks the acceptor out of accept(); close after join.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    obs::LedgeredMutexLock lock(conn_mu_, obs::LockClass::kServerConn);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    obs::LedgeredMutexLock lock(conn_mu_, obs::LockClass::kServerConn);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down
    }
    obs::ScopedSpan span("server/accept");
    if (shutdown_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      obs::MetricsRegistry::Global().requests_rejected.Add();
      HttpResponse busy = JsonResponse(
          503, "{\"code\":\"ResourceExhausted\","
               "\"error\":\"too many connections\"}\n");
      (void)WriteHttpResponse(fd, busy, false);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetSocketTimeout(fd, options_.idle_timeout_ms);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    obs::LedgeredMutexLock lock(conn_mu_, obs::LockClass::kServerConn);
    conn_fds_.insert(fd);
    conn_threads_.emplace_back(&Server::ServeConnection, this, fd);
  }
}

void Server::ServeConnection(int fd) {
  while (!shutdown_.load(std::memory_order_relaxed)) {
    HttpRequest request;
    Status st;
    {
      obs::ScopedSpan span("server/parse");
      st = ReadHttpRequest(fd, &request);
    }
    if (!st.ok()) {
      if (st.code() == StatusCode::kInvalidArgument) {
        (void)WriteHttpResponse(fd, ErrorResponse(400, 0, st), false);
      }
      // Clean close, idle timeout, reset: just drop the connection.
      break;
    }
    HttpResponse response = Dispatch(request);
    bool keep = request.keep_alive &&
                !shutdown_.load(std::memory_order_relaxed);
    Status wst = WriteHttpResponse(fd, response, keep);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!wst.ok() || !keep) break;
  }
  {
    obs::LedgeredMutexLock lock(conn_mu_, obs::LockClass::kServerConn);
    conn_fds_.erase(fd);
  }
  ::close(fd);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

HttpResponse Server::Dispatch(const HttpRequest& request) {
  obs::MetricsRegistry::Global().http_requests.Add();
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedSpan span("server/request",
                       request.method + " " + request.path);
  if (request.method != "GET" && request.method != "HEAD") {
    return ErrorResponse(
        405, id, Status::NotSupported("only GET/HEAD are supported"));
  }
  if (request.path == "/healthz") {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  }
  if (request.path == "/metrics") {
    HttpResponse response;
#if defined(NATIX_OBS_DISABLED)
    response.content_type = "application/json";
#else
    response.content_type = obs::kPrometheusContentType;
#endif
    response.body = RenderMetrics();
    return response;
  }
  if (request.path == "/statusz") {
    return JsonResponse(200, RenderStatus());
  }
  if (request.path == "/query") {
    HttpResponse response = HandleQuery(request);
    // The request id is patched into the payload by HandleQuery; keep
    // Dispatch ignorant of its JSON.
    return response;
  }
  return ErrorResponse(404, id,
                       Status::NotFound("no such endpoint: " + request.path));
}

Server::AdmitResult Server::Admit(uint64_t deadline_ns) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::LedgeredUniqueLock ledgered(admission_mu_,
                                  obs::LockClass::kAdmission);
  std::unique_lock<std::mutex>& lock = ledgered.lock();
  if (shutdown_.load(std::memory_order_relaxed)) {
    return AdmitResult::kShutdown;
  }
  if (executing_ < options_.max_concurrency) {
    ++executing_;
    metrics.queue_wait_ns.Record(0);
    return AdmitResult::kAdmitted;
  }
  if (waiting_ >= options_.queue_capacity) return AdmitResult::kRejected;
  ++waiting_;
  metrics.queue_depth.Set(static_cast<int64_t>(waiting_));
  const uint64_t enqueue_ns = MonotonicNanos();
  bool expired = false;
  while (executing_ >= options_.max_concurrency &&
         !shutdown_.load(std::memory_order_relaxed)) {
    if (deadline_ns != 0) {
      if (admission_cv_.wait_until(lock, SteadyFromNanos(deadline_ns)) ==
              std::cv_status::timeout &&
          MonotonicNanos() >= deadline_ns) {
        expired = true;
        break;
      }
    } else {
      admission_cv_.wait(lock);
    }
  }
  --waiting_;
  metrics.queue_depth.Set(static_cast<int64_t>(waiting_));
  if (expired) return AdmitResult::kDeadlineExpired;
  if (shutdown_.load(std::memory_order_relaxed)) {
    return AdmitResult::kShutdown;
  }
  ++executing_;
  metrics.queue_wait_ns.Record(MonotonicNanos() - enqueue_ns);
  return AdmitResult::kAdmitted;
}

void Server::Release() {
  {
    obs::LedgeredMutexLock lock(admission_mu_, obs::LockClass::kAdmission);
    --executing_;
  }
  admission_cv_.notify_one();
}

HttpResponse Server::HandleQuery(const HttpRequest& request) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);

  const std::string* doc = request.Param("doc");
  const std::string* xpath = request.Param("q");
  if (doc == nullptr || xpath == nullptr) {
    return ErrorResponse(
        400, id,
        Status::InvalidArgument("required parameters: doc=<name>, "
                                "q=<xpath>"));
  }
  uint64_t limit = 0;
  if (const std::string* p = request.Param("limit")) {
    if (!ParseUint64(*p, &limit)) {
      return ErrorResponse(400, id,
                           Status::InvalidArgument("bad limit parameter"));
    }
  }
  uint64_t deadline_ms = options_.default_deadline_ms;
  if (const std::string* p = request.Param("deadline_ms")) {
    if (!ParseUint64(*p, &deadline_ms)) {
      return ErrorResponse(
          400, id, Status::InvalidArgument("bad deadline_ms parameter"));
    }
  }
  std::string mode = "values";
  if (const std::string* p = request.Param("mode")) mode = *p;
  if (mode != "values" && mode != "xml" && mode != "count") {
    return ErrorResponse(
        400, id,
        Status::InvalidArgument("mode must be values, xml or count"));
  }

  StatusOr<storage::StoredNode> root = db_->Root(*doc);
  if (!root.ok()) {
    return ErrorResponse(404, id, root.status());
  }

  // The budget covers queue wait AND execution: an absolute deadline is
  // fixed before admission so a request cannot sit in the queue past it.
  const uint64_t deadline_ns =
      deadline_ms == 0 ? 0 : MonotonicNanos() + deadline_ms * 1000000ull;

  AdmitResult admitted;
  {
    obs::ScopedSpan span("server/queue");
    admitted = Admit(deadline_ns);
  }
  switch (admitted) {
    case AdmitResult::kAdmitted:
      break;
    case AdmitResult::kRejected:
      metrics.requests_rejected.Add();
      return ErrorResponse(
          503, id,
          Status::ResourceExhausted("admission queue full, try again"));
    case AdmitResult::kDeadlineExpired:
      // The execution never started, so the API layer cannot count it.
      metrics.deadline_exceeded.Add();
      return ErrorResponse(
          504, id,
          Status::DeadlineExceeded("deadline expired while queued"));
    case AdmitResult::kShutdown:
      metrics.requests_rejected.Add();
      return ErrorResponse(503, id,
                           Status::Cancelled("server shutting down"));
  }

  struct SlotRelease {
    Server* server;
    ~SlotRelease() {
      obs::MetricsRegistry::Global().requests_in_flight.Sub();
      server->Release();
    }
  } release{this};
  metrics.requests_in_flight.Add();

  // Prepare (plan cache keyed on text + options, so each distinct limit
  // is its own plan) and execute under the request's deadline.
  translate::TranslatorOptions topts;
  topts.result_limit = limit;
  const uint64_t begin_ns = MonotonicNanos();
  std::string body;
  {
    obs::ScopedSpan span("server/exec", *xpath);
    StatusOr<std::shared_ptr<const PreparedQuery>> prepared =
        db_->Prepare(*xpath, topts);
    if (!prepared.ok()) {
      return ErrorResponse(HttpStatusFor(prepared.status()), id,
                           prepared.status());
    }
    StatusOr<std::unique_ptr<PreparedQuery::Execution>> execution =
        (*prepared)->NewExecution(options_.collect_stats);
    if (!execution.ok()) {
      return ErrorResponse(HttpStatusFor(execution.status()), id,
                           execution.status());
    }
    (*execution)->SetDeadlineNs(deadline_ns);
    (*execution)->SetCancelFlag(&shutdown_);

    std::string head = "{\"id\":" + std::to_string(id) + ",\"doc\":\"" +
                       JsonEscape(*doc) + "\",\"query\":\"" +
                       JsonEscape(*xpath) + "\",\"mode\":\"" + mode +
                       "\",";
    if ((*prepared)->result_type() == xpath::ExprType::kNodeSet) {
      StatusOr<std::vector<storage::StoredNode>> nodes =
          (*execution)->EvaluateNodes(root->id());
      if (!nodes.ok()) {
        return ErrorResponse(HttpStatusFor(nodes.status()), id,
                             nodes.status());
      }
      obs::ScopedSpan serialize_span("server/serialize");
      body = std::move(head);
      body += "\"count\":" + std::to_string(nodes->size());
      if (mode != "count") {
        body += ",\"results\":[";
        bool first = true;
        for (const storage::StoredNode& node : *nodes) {
          StatusOr<std::string> rendered =
              mode == "xml" ? xml::OuterXml(node) : node.string_value();
          if (!rendered.ok()) {
            return ErrorResponse(500, id, rendered.status());
          }
          if (!first) body += ',';
          first = false;
          body += '"';
          body += JsonEscape(*rendered);
          body += '"';
        }
        body += ']';
      }
    } else {
      StatusOr<std::string> value = (*execution)->EvaluateString(root->id());
      if (!value.ok()) {
        return ErrorResponse(HttpStatusFor(value.status()), id,
                             value.status());
      }
      obs::ScopedSpan serialize_span("server/serialize");
      body = std::move(head);
      body += "\"value\":\"" + JsonEscape(*value) + '"';
    }
    const ExecutionStats& stats = (*execution)->last_stats();
    body += ",\"elapsed_ns\":" + std::to_string(MonotonicNanos() - begin_ns);
    body += ",\"page_faults\":" + std::to_string(stats.page_faults);
    body += ",\"tuples\":" + std::to_string(stats.step_tuples);
    body += "}\n";
  }
  return JsonResponse(200, std::move(body));
}

std::string Server::RenderMetrics() const {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
#if defined(NATIX_OBS_DISABLED)
  return obs::RenderPrometheus(metrics);  // the {"disabled":true} stub
#else
  std::string out = obs::RenderPrometheus(metrics);
  // Serving- and storage-level series that live outside the registry.
  const PlanCache& cache = db_->plan_cache();
  obs::AppendPrometheusGauge(&out, "natix_plan_cache_entries",
                             "Prepared plans currently cached.",
                             static_cast<int64_t>(cache.size()));
  obs::AppendPrometheusGauge(&out, "natix_plan_cache_capacity",
                             "Configured plan cache capacity.",
                             static_cast<int64_t>(cache.capacity()));
  obs::AppendPrometheusCounter(&out, "natix_plan_cache_evictions_total",
                               "Plans evicted from the cache.",
                               cache.eviction_count());
  const storage::BufferManager* pool = db_->store()->buffer_manager();
  storage::BufferManager::CounterSnapshot snap = pool->Snapshot();
  obs::AppendPrometheusCounter(&out, "natix_buffer_faults_total",
                               "Pages faulted in from the file.",
                               snap.faults);
  obs::AppendPrometheusCounter(&out, "natix_buffer_hits_total",
                               "Page fixes served from the pool.",
                               snap.hits);
  obs::AppendPrometheusCounter(&out, "natix_buffer_writes_total",
                               "Dirty pages written back.", snap.writes);
  obs::AppendPrometheusCounter(&out, "natix_buffer_evictions_total",
                               "Frames reclaimed from an LRU list.",
                               snap.evictions);
  size_t resident = 0;
  for (const storage::BufferManager::ShardSnapshot& shard :
       pool->ShardSnapshots()) {
    resident += shard.resident_pages;
  }
  obs::AppendPrometheusGauge(&out, "natix_buffer_pool_pages",
                             "Buffer pool capacity in page frames.",
                             static_cast<int64_t>(pool->capacity()));
  obs::AppendPrometheusGauge(&out, "natix_buffer_resident_pages",
                             "Pages currently mapped in the pool.",
                             static_cast<int64_t>(resident));
  obs::AppendPrometheusGauge(
      &out, "natix_open_connections", "Connections currently open.",
      static_cast<int64_t>(
          open_connections_.load(std::memory_order_relaxed)));
  obs::AppendPrometheusGauge(
      &out, "natix_documents", "Documents loaded in the store.",
      static_cast<int64_t>(db_->store()->documents().size()));
  const uint64_t start = start_ns_.load(std::memory_order_relaxed);
  obs::AppendPrometheusGauge(
      &out, "natix_uptime_seconds", "Seconds since the server started.",
      start == 0
          ? 0
          : static_cast<int64_t>((MonotonicNanos() - start) / 1000000000ull));
  return out;
#endif
}

std::string Server::RenderStatus() const {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  size_t executing = 0;
  size_t waiting = 0;
  {
    obs::LedgeredMutexLock lock(admission_mu_, obs::LockClass::kAdmission);
    executing = executing_;
    waiting = waiting_;
  }
  const uint64_t start = start_ns_.load(std::memory_order_relaxed);
  std::string out = "{\"uptime_s\":";
  out += std::to_string(
      start == 0 ? 0 : (MonotonicNanos() - start) / 1000000000ull);
  out += ",\"admission\":{\"max_concurrency\":";
  out += std::to_string(options_.max_concurrency);
  out += ",\"queue_capacity\":";
  out += std::to_string(options_.queue_capacity);
  out += ",\"executing\":";
  out += std::to_string(executing);
  out += ",\"waiting\":";
  out += std::to_string(waiting);
  out += ",\"open_connections\":";
  out += std::to_string(open_connections_.load(std::memory_order_relaxed));
  out += "},\"requests\":{\"served\":";
  out += std::to_string(requests_served_.load(std::memory_order_relaxed));
  out += ",\"http\":";
  out += std::to_string(metrics.http_requests.value());
  out += ",\"rejected\":";
  out += std::to_string(metrics.requests_rejected.value());
  out += ",\"deadline_exceeded\":";
  out += std::to_string(metrics.deadline_exceeded.value());
  out += ",\"cancelled\":";
  out += std::to_string(metrics.queries_cancelled.value());
  out += "},\"documents\":[";
  {
    bool first = true;
    for (const storage::DocumentInfo& info : db_->store()->documents()) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += JsonEscape(info.name);
      out += '"';
    }
  }
  out += "],\"plan_cache\":{\"capacity\":";
  const PlanCache& cache = db_->plan_cache();
  out += std::to_string(cache.capacity());
  out += ",\"size\":";
  out += std::to_string(cache.size());
  out += ",\"hits\":";
  out += std::to_string(cache.hit_count());
  out += ",\"misses\":";
  out += std::to_string(cache.miss_count());
  out += ",\"evictions\":";
  out += std::to_string(cache.eviction_count());
  out += "},\"buffer_pool\":{\"pages\":";
  const storage::BufferManager* pool = db_->store()->buffer_manager();
  out += std::to_string(pool->capacity());
  out += ",\"shards\":[";
  {
    bool first = true;
    for (const storage::BufferManager::ShardSnapshot& shard :
         pool->ShardSnapshots()) {
      if (!first) out += ',';
      first = false;
      out += "{\"faults\":";
      out += std::to_string(shard.faults);
      out += ",\"hits\":";
      out += std::to_string(shard.hits);
      out += ",\"writes\":";
      out += std::to_string(shard.writes);
      out += ",\"evictions\":";
      out += std::to_string(shard.evictions);
      out += ",\"resident_pages\":";
      out += std::to_string(shard.resident_pages);
      out += '}';
    }
  }
  out += "]},\"slow_queries\":[";
  {
    bool first = true;
    for (const obs::SlowQueryEntry& entry : metrics.slow_log().Dump()) {
      if (!first) out += ',';
      first = false;
      out += "{\"sequence\":";
      out += std::to_string(entry.sequence);
      out += ",\"xpath\":\"";
      out += JsonEscape(entry.xpath);
      out += "\",\"exec_ns\":";
      out += std::to_string(entry.exec_ns);
      out += ",\"page_faults\":";
      out += std::to_string(entry.page_faults);
      out += ",\"tuples\":";
      out += std::to_string(entry.tuples);
      out += '}';
    }
  }
  out += "],\"lock_ledger\":";
  out += obs::LockLedger::Global().GraphJson();
  out += "}\n";
  return out;
}

}  // namespace natix::server
