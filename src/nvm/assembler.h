#ifndef NATIX_NVM_ASSEMBLER_H_
#define NATIX_NVM_ASSEMBLER_H_

#include <functional>
#include <string>

#include "algebra/operator.h"
#include "base/statusor.h"
#include "nvm/program.h"
#include "runtime/register_file.h"

namespace natix::nvm {

/// Resolves an attribute name to its plan register (the code generator's
/// attribute manager, Sec. 5.1).
using AttrResolver =
    std::function<StatusOr<runtime::RegisterId>(const std::string&)>;

/// Registers a nested sequence-valued scalar (its plan and aggregate)
/// with the surrounding physical plan, returning the nested-iterator
/// index referenced by kEvalNested (Sec. 5.2.3).
using NestedRegistrar =
    std::function<StatusOr<size_t>(const algebra::Scalar&)>;

/// Compiles a scalar subscript expression into an NVM program
/// (step 6 of the compiler pipeline for non-sequence-valued parts).
StatusOr<Program> CompileScalar(const algebra::Scalar& scalar,
                                const AttrResolver& resolve_attr,
                                const NestedRegistrar& register_nested);

}  // namespace natix::nvm

#endif  // NATIX_NVM_ASSEMBLER_H_
