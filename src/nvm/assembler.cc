#include "nvm/assembler.h"

#include <utility>

namespace natix::nvm {

namespace {

using algebra::Scalar;
using algebra::ScalarKind;
using runtime::Value;
using xpath::BinaryOp;
using xpath::FunctionId;

class AssemblerImpl {
 public:
  AssemblerImpl(const AttrResolver& resolve_attr,
                const NestedRegistrar& register_nested)
      : resolve_attr_(resolve_attr), register_nested_(register_nested) {}

  StatusOr<Program> Compile(const Scalar& scalar) {
    NATIX_ASSIGN_OR_RETURN(uint16_t result, Emit(scalar));
    Instruction halt;
    halt.op = OpCode::kHalt;
    halt.a = result;
    program_.code.push_back(halt);
    program_.register_count = next_register_;
    return std::move(program_);
  }

 private:
  uint16_t NewRegister() { return next_register_++; }

  size_t EmitIns(OpCode op, uint16_t a, uint16_t b = 0, uint16_t c = 0,
                 uint16_t d = 0) {
    Instruction ins;
    ins.op = op;
    ins.a = a;
    ins.b = b;
    ins.c = c;
    ins.d = d;
    program_.code.push_back(ins);
    return program_.code.size() - 1;
  }

  uint16_t EmitConst(Value v) {
    uint16_t reg = NewRegister();
    program_.constants.push_back(std::move(v));
    EmitIns(OpCode::kLoadConst, reg,
            static_cast<uint16_t>(program_.constants.size() - 1));
    return reg;
  }

  StatusOr<uint16_t> Emit(const Scalar& s) {
    switch (s.kind) {
      case ScalarKind::kNumberConst:
        return EmitConst(Value::Number(s.number));
      case ScalarKind::kStringConst:
        return EmitConst(Value::String(s.string_value));
      case ScalarKind::kBoolConst:
        return EmitConst(Value::Boolean(s.boolean));
      case ScalarKind::kAttrRef: {
        NATIX_ASSIGN_OR_RETURN(runtime::RegisterId attr,
                               resolve_attr_(s.name));
        uint16_t reg = NewRegister();
        EmitIns(OpCode::kLoadAttr, reg, static_cast<uint16_t>(attr));
        return reg;
      }
      case ScalarKind::kVarRef: {
        program_.variable_names.push_back(s.name);
        uint16_t reg = NewRegister();
        EmitIns(OpCode::kLoadVar, reg,
                static_cast<uint16_t>(program_.variable_names.size() - 1));
        return reg;
      }
      case ScalarKind::kNegate: {
        NATIX_ASSIGN_OR_RETURN(uint16_t operand, Emit(*s.children[0]));
        uint16_t reg = NewRegister();
        EmitIns(OpCode::kNeg, reg, operand);
        return reg;
      }
      case ScalarKind::kArith: {
        NATIX_ASSIGN_OR_RETURN(uint16_t lhs, Emit(*s.children[0]));
        NATIX_ASSIGN_OR_RETURN(uint16_t rhs, Emit(*s.children[1]));
        OpCode op;
        switch (s.op) {
          case BinaryOp::kAdd:
            op = OpCode::kAdd;
            break;
          case BinaryOp::kSub:
            op = OpCode::kSub;
            break;
          case BinaryOp::kMul:
            op = OpCode::kMul;
            break;
          case BinaryOp::kDiv:
            op = OpCode::kDiv;
            break;
          case BinaryOp::kMod:
            op = OpCode::kMod;
            break;
          default:
            return Status::Internal("non-arithmetic op in kArith");
        }
        uint16_t reg = NewRegister();
        EmitIns(op, reg, lhs, rhs);
        return reg;
      }
      case ScalarKind::kLogical: {
        // Short-circuit: evaluate lhs into `out`; skip rhs when decided.
        uint16_t out = NewRegister();
        NATIX_ASSIGN_OR_RETURN(uint16_t lhs, Emit(*s.children[0]));
        EmitIns(OpCode::kToBool, out, lhs);
        size_t jump = EmitIns(s.op == BinaryOp::kAnd
                                  ? OpCode::kJumpIfFalse
                                  : OpCode::kJumpIfTrue,
                              out, /*target patched below*/ 0);
        NATIX_ASSIGN_OR_RETURN(uint16_t rhs, Emit(*s.children[1]));
        EmitIns(OpCode::kToBool, out, rhs);
        program_.code[jump].b =
            static_cast<uint16_t>(program_.code.size());
        return out;
      }
      case ScalarKind::kCompare: {
        NATIX_ASSIGN_OR_RETURN(uint16_t lhs, Emit(*s.children[0]));
        NATIX_ASSIGN_OR_RETURN(uint16_t rhs, Emit(*s.children[1]));
        uint16_t reg = NewRegister();
        EmitIns(OpCode::kCompare, reg, lhs, rhs,
                static_cast<uint16_t>(s.cmp));
        return reg;
      }
      case ScalarKind::kNested: {
        NATIX_ASSIGN_OR_RETURN(size_t index, register_nested_(s));
        uint16_t reg = NewRegister();
        EmitIns(OpCode::kEvalNested, reg, static_cast<uint16_t>(index));
        return reg;
      }
      case ScalarKind::kFunc:
        return EmitCall(s);
    }
    return Status::Internal("unknown scalar kind");
  }

  StatusOr<uint16_t> EmitCall(const Scalar& s) {
    auto unary = [&](OpCode op) -> StatusOr<uint16_t> {
      NATIX_ASSIGN_OR_RETURN(uint16_t arg, Emit(*s.children[0]));
      uint16_t reg = NewRegister();
      EmitIns(op, reg, arg);
      return reg;
    };
    auto binary = [&](OpCode op) -> StatusOr<uint16_t> {
      NATIX_ASSIGN_OR_RETURN(uint16_t a, Emit(*s.children[0]));
      NATIX_ASSIGN_OR_RETURN(uint16_t b, Emit(*s.children[1]));
      uint16_t reg = NewRegister();
      EmitIns(op, reg, a, b);
      return reg;
    };
    switch (s.function) {
      case FunctionId::kString:
        return unary(OpCode::kToStr);
      case FunctionId::kNumber:
        return unary(OpCode::kToNum);
      case FunctionId::kBoolean:
        return unary(OpCode::kToBool);
      case FunctionId::kNot:
        return unary(OpCode::kNot);
      case FunctionId::kTrue:
        return EmitConst(Value::Boolean(true));
      case FunctionId::kFalse:
        return EmitConst(Value::Boolean(false));
      case FunctionId::kConcat: {
        NATIX_ASSIGN_OR_RETURN(uint16_t acc, Emit(*s.children[0]));
        for (size_t i = 1; i < s.children.size(); ++i) {
          NATIX_ASSIGN_OR_RETURN(uint16_t next, Emit(*s.children[i]));
          uint16_t reg = NewRegister();
          EmitIns(OpCode::kConcat2, reg, acc, next);
          acc = reg;
        }
        return acc;
      }
      case FunctionId::kStartsWith:
        return binary(OpCode::kStartsWith);
      case FunctionId::kContains:
        return binary(OpCode::kContains);
      case FunctionId::kSubstringBefore:
        return binary(OpCode::kSubstringBefore);
      case FunctionId::kSubstringAfter:
        return binary(OpCode::kSubstringAfter);
      case FunctionId::kSubstring: {
        NATIX_ASSIGN_OR_RETURN(uint16_t str, Emit(*s.children[0]));
        NATIX_ASSIGN_OR_RETURN(uint16_t pos, Emit(*s.children[1]));
        uint16_t reg = NewRegister();
        if (s.children.size() == 2) {
          EmitIns(OpCode::kSubstring2, reg, str, pos);
        } else {
          NATIX_ASSIGN_OR_RETURN(uint16_t len, Emit(*s.children[2]));
          EmitIns(OpCode::kSubstring3, reg, str, pos, len);
        }
        return reg;
      }
      case FunctionId::kStringLength:
        return unary(OpCode::kStringLength);
      case FunctionId::kNormalizeSpace:
        return unary(OpCode::kNormalizeSpace);
      case FunctionId::kTranslate: {
        NATIX_ASSIGN_OR_RETURN(uint16_t str, Emit(*s.children[0]));
        NATIX_ASSIGN_OR_RETURN(uint16_t from, Emit(*s.children[1]));
        NATIX_ASSIGN_OR_RETURN(uint16_t to, Emit(*s.children[2]));
        uint16_t reg = NewRegister();
        EmitIns(OpCode::kTranslate, reg, str, from, to);
        return reg;
      }
      case FunctionId::kFloor:
        return unary(OpCode::kFloor);
      case FunctionId::kCeiling:
        return unary(OpCode::kCeiling);
      case FunctionId::kRound:
        return unary(OpCode::kRound);
      case FunctionId::kLang:
        return binary(OpCode::kLang);
      case FunctionId::kRootInternal:
        return unary(OpCode::kRoot);
      default:
        return Status::Internal(
            std::string("function has no NVM lowering: ") +
            xpath::FunctionInfoFor(s.function).name);
    }
  }

  const AttrResolver& resolve_attr_;
  const NestedRegistrar& register_nested_;
  Program program_;
  uint16_t next_register_ = 0;
};

}  // namespace

StatusOr<Program> CompileScalar(const Scalar& scalar,
                                const AttrResolver& resolve_attr,
                                const NestedRegistrar& register_nested) {
  AssemblerImpl impl(resolve_attr, register_nested);
  return impl.Compile(scalar);
}

}  // namespace natix::nvm
