#include "nvm/program.h"

namespace natix::nvm {

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kLoadConst:
      return "load_const";
    case OpCode::kLoadAttr:
      return "load_attr";
    case OpCode::kLoadVar:
      return "load_var";
    case OpCode::kAdd:
      return "add";
    case OpCode::kSub:
      return "sub";
    case OpCode::kMul:
      return "mul";
    case OpCode::kDiv:
      return "div";
    case OpCode::kMod:
      return "mod";
    case OpCode::kNeg:
      return "neg";
    case OpCode::kNot:
      return "not";
    case OpCode::kToBool:
      return "to_bool";
    case OpCode::kToNum:
      return "to_num";
    case OpCode::kToStr:
      return "to_str";
    case OpCode::kCompare:
      return "compare";
    case OpCode::kJump:
      return "jump";
    case OpCode::kJumpIfTrue:
      return "jump_if_true";
    case OpCode::kJumpIfFalse:
      return "jump_if_false";
    case OpCode::kConcat2:
      return "concat2";
    case OpCode::kStartsWith:
      return "starts_with";
    case OpCode::kContains:
      return "contains";
    case OpCode::kSubstringBefore:
      return "substring_before";
    case OpCode::kSubstringAfter:
      return "substring_after";
    case OpCode::kSubstring2:
      return "substring2";
    case OpCode::kSubstring3:
      return "substring3";
    case OpCode::kStringLength:
      return "string_length";
    case OpCode::kNormalizeSpace:
      return "normalize_space";
    case OpCode::kTranslate:
      return "translate";
    case OpCode::kFloor:
      return "floor";
    case OpCode::kCeiling:
      return "ceiling";
    case OpCode::kRound:
      return "round";
    case OpCode::kRoot:
      return "root";
    case OpCode::kNodeName:
      return "node_name";
    case OpCode::kNodeLocalName:
      return "node_local_name";
    case OpCode::kLang:
      return "lang";
    case OpCode::kEvalNested:
      return "eval_nested";
    case OpCode::kHalt:
      return "halt";
    case OpCode::kMove:
      return "move";
    case OpCode::kCmpAttrConst:
      return "cmp_attr_const";
    case OpCode::kCmpBranch:
      return "cmp_branch";
  }
  return "?";
}

std::string Program::Disassemble() const {
  std::string out;
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const Instruction& ins = code[pc];
    out += std::to_string(pc) + ": " + OpCodeName(ins.op) + " r" +
           std::to_string(ins.a);
    switch (ins.op) {
      case OpCode::kLoadConst:
        out += ", " + constants[ins.b].DebugString();
        break;
      case OpCode::kLoadAttr:
        out += ", attr#" + std::to_string(ins.b);
        break;
      case OpCode::kLoadVar:
        out += ", $" + variable_names[ins.b];
        break;
      case OpCode::kJump:
      case OpCode::kJumpIfTrue:
      case OpCode::kJumpIfFalse:
        out += " -> " + std::to_string(ins.b);
        break;
      case OpCode::kEvalNested:
        out += ", nested#" + std::to_string(ins.b);
        break;
      case OpCode::kCompare:
        out += ", r" + std::to_string(ins.b) + ", r" + std::to_string(ins.c) +
               ", op#" + std::to_string(ins.d);
        break;
      case OpCode::kCmpAttrConst:
        out += ", attr#" + std::to_string(ins.b) + ", " +
               constants[ins.c].DebugString() + ", op#" +
               std::to_string(ins.d);
        break;
      case OpCode::kCmpBranch:
        // The `a` printed above is the jump target, not a register.
        out += ", r" + std::to_string(ins.b) + ", r" + std::to_string(ins.c) +
               ", op#" + std::to_string(ins.d) + " -> " +
               std::to_string(ins.a);
        break;
      case OpCode::kHalt:
        break;
      default:
        out += ", r" + std::to_string(ins.b);
        if (ins.c != 0 || ins.op == OpCode::kConcat2) {
          out += ", r" + std::to_string(ins.c);
        }
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace natix::nvm
