#ifndef NATIX_NVM_VM_H_
#define NATIX_NVM_VM_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/statusor.h"
#include "nvm/program.h"
#include "runtime/conversions.h"
#include "runtime/register_file.h"

namespace natix::nvm {

/// Callback giving kEvalNested access to the physical plan's nested
/// iterators (Sec. 5.2.3). Index identifies the nested plan; the result
/// is the aggregated atomic value.
using NestedEvaluator =
    std::function<StatusOr<runtime::Value>(size_t nested_index)>;

/// The interpreter for NVM programs. One Vm per compiled program; the
/// scratch register frame is reused across invocations.
class Vm {
 public:
  explicit Vm(const Program* program) : program_(program) {
    frame_.resize(program->register_count);
  }

  /// Runs the program against the current tuple (the plan register file),
  /// the execution context (store access + $variables) and the nested
  /// iterator table. Returns the value of the halt register. When
  /// `retired` is non-null, the number of instructions executed by a
  /// successful run is added to it (the nvm_insns_retired metric;
  /// failing runs abort the query, so their partial counts are not
  /// accounted).
  StatusOr<runtime::Value> Run(const runtime::RegisterFile& tuple,
                               const runtime::EvalContext& ctx,
                               const std::unordered_map<std::string,
                                                        runtime::Value>&
                                   variables,
                               const NestedEvaluator& nested,
                               uint64_t* retired = nullptr);

 private:
  const Program* program_;
  std::vector<runtime::Value> frame_;
};

}  // namespace natix::nvm

#endif  // NATIX_NVM_VM_H_
