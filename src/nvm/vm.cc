#include "nvm/vm.h"

#include <cmath>

#include "base/strings.h"
#include "base/xpath_number.h"
#include "runtime/node_ops.h"

namespace natix::nvm {

namespace {

using runtime::EvalContext;
using runtime::NodeRef;
using runtime::Value;

/// XPath substring(): 1-based positions, round() on the arguments, IEEE
/// comparison semantics so NaN bounds select nothing (rec. Sec. 4.2).
std::string XPathSubstring(const std::string& s, double pos, double len,
                           bool has_len) {
  double start = XPathRound(pos);
  double end = has_len ? start + XPathRound(len) : 0;
  std::string out;
  size_t p = 1;
  for (size_t i = 0; i < s.size(); ++p) {
    size_t before = i;
    Utf8Decode(s, i);
    double dp = static_cast<double>(p);
    bool include = dp >= start && (!has_len ? true : dp < end);
    if (include) out.append(s, before, i - before);
  }
  return out;
}

/// XPath lang(): climbs from the context node looking for xml:lang and
/// compares case-insensitively, allowing a '-' suffix.
StatusOr<bool> LangMatches(const std::string& wanted, NodeRef context,
                           const EvalContext& ctx) {
  if (!context.valid()) return false;
  uint32_t xml_lang = ctx.store->names()->Lookup("xml:lang");
  if (xml_lang == storage::kInvalidNameId) return false;

  storage::NodeRecord record;
  storage::NodeId node = context.node_id();
  NATIX_RETURN_IF_ERROR(ctx.store->ReadNode(node, &record));
  if (record.kind == storage::StoredNodeKind::kAttribute) {
    node = record.parent;
  }
  while (node.valid()) {
    NATIX_RETURN_IF_ERROR(ctx.store->ReadNode(node, &record));
    storage::NodeId attr = record.first_attr;
    while (attr.valid()) {
      storage::NodeRecord attr_record;
      NATIX_RETURN_IF_ERROR(ctx.store->ReadNode(attr, &attr_record));
      if (attr_record.name_id == xml_lang) {
        std::string value = attr_record.inline_text;
        // Case-insensitive compare; exact match or prefix before '-'.
        auto lower = [](std::string s) {
          for (char& c : s) {
            if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
          }
          return s;
        };
        std::string lv = lower(value);
        std::string lw = lower(wanted);
        return lv == lw || (lv.size() > lw.size() &&
                            lv.compare(0, lw.size(), lw) == 0 &&
                            lv[lw.size()] == '-');
      }
      attr = attr_record.next_sibling;
    }
    node = record.parent;
  }
  return false;
}

StatusOr<NodeRef> RootOf(NodeRef node, const EvalContext& ctx) {
  storage::NodeId current = node.node_id();
  storage::NodeRecord record;
  while (true) {
    NATIX_RETURN_IF_ERROR(ctx.store->ReadNode(current, &record));
    if (!record.parent.valid()) {
      return NodeRef::Make(current, record.order);
    }
    current = record.parent;
  }
}

}  // namespace

StatusOr<Value> Vm::Run(
    const runtime::RegisterFile& tuple, const EvalContext& ctx,
    const std::unordered_map<std::string, Value>& variables,
    const NestedEvaluator& nested, uint64_t* retired) {
  auto& r = frame_;
  const std::vector<Instruction>& code = program_->code;

  auto num = [&](uint16_t reg) -> StatusOr<double> {
    return runtime::ToNumber(r[reg], ctx);
  };
  auto str = [&](uint16_t reg) -> StatusOr<std::string> {
    return runtime::ToStringValue(r[reg], ctx);
  };
  auto boolean = [&](uint16_t reg) -> StatusOr<bool> {
    return runtime::ToBoolean(r[reg], ctx);
  };
  auto node = [&](uint16_t reg) -> StatusOr<NodeRef> {
    if (r[reg].kind() != runtime::ValueKind::kNode) {
      return Status::Internal("NVM: register does not hold a node");
    }
    return r[reg].AsNode();
  };

  size_t pc = 0;
  uint64_t executed = 0;
  while (pc < code.size()) {
    const Instruction& ins = code[pc];
    ++executed;
    switch (ins.op) {
      case OpCode::kLoadConst:
        r[ins.a] = program_->constants[ins.b];
        break;
      case OpCode::kLoadAttr:
        r[ins.a] = tuple[ins.b];
        break;
      case OpCode::kLoadVar: {
        const std::string& name = program_->variable_names[ins.b];
        auto it = variables.find(name);
        if (it == variables.end()) {
          return Status::InvalidArgument("unbound variable $" + name);
        }
        r[ins.a] = it->second;
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kMod: {
        NATIX_ASSIGN_OR_RETURN(double x, num(ins.b));
        NATIX_ASSIGN_OR_RETURN(double y, num(ins.c));
        double out = 0;
        switch (ins.op) {
          case OpCode::kAdd:
            out = x + y;
            break;
          case OpCode::kSub:
            out = x - y;
            break;
          case OpCode::kMul:
            out = x * y;
            break;
          case OpCode::kDiv:
            out = x / y;  // IEEE: 1 div 0 = Infinity, 0 div 0 = NaN
            break;
          default:
            out = std::fmod(x, y);  // sign of the dividend, as XPath mod
            break;
        }
        r[ins.a] = Value::Number(out);
        break;
      }
      case OpCode::kNeg: {
        NATIX_ASSIGN_OR_RETURN(double x, num(ins.b));
        r[ins.a] = Value::Number(-x);
        break;
      }
      case OpCode::kNot: {
        NATIX_ASSIGN_OR_RETURN(bool x, boolean(ins.b));
        r[ins.a] = Value::Boolean(!x);
        break;
      }
      case OpCode::kToBool: {
        NATIX_ASSIGN_OR_RETURN(bool x, boolean(ins.b));
        r[ins.a] = Value::Boolean(x);
        break;
      }
      case OpCode::kToNum: {
        NATIX_ASSIGN_OR_RETURN(double x, num(ins.b));
        r[ins.a] = Value::Number(x);
        break;
      }
      case OpCode::kToStr: {
        NATIX_ASSIGN_OR_RETURN(std::string x, str(ins.b));
        r[ins.a] = Value::String(std::move(x));
        break;
      }
      case OpCode::kCompare: {
        NATIX_ASSIGN_OR_RETURN(
            bool out,
            runtime::CompareAtomic(static_cast<runtime::CompareOp>(ins.d),
                                   r[ins.b], r[ins.c], ctx));
        r[ins.a] = Value::Boolean(out);
        break;
      }
      case OpCode::kJump:
        pc = ins.b;
        continue;
      case OpCode::kJumpIfTrue: {
        NATIX_ASSIGN_OR_RETURN(bool x, boolean(ins.a));
        if (x) {
          pc = ins.b;
          continue;
        }
        break;
      }
      case OpCode::kJumpIfFalse: {
        NATIX_ASSIGN_OR_RETURN(bool x, boolean(ins.a));
        if (!x) {
          pc = ins.b;
          continue;
        }
        break;
      }
      case OpCode::kConcat2: {
        NATIX_ASSIGN_OR_RETURN(std::string x, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(std::string y, str(ins.c));
        r[ins.a] = Value::String(x + y);
        break;
      }
      case OpCode::kStartsWith: {
        NATIX_ASSIGN_OR_RETURN(std::string x, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(std::string y, str(ins.c));
        r[ins.a] = Value::Boolean(StartsWith(x, y));
        break;
      }
      case OpCode::kContains: {
        NATIX_ASSIGN_OR_RETURN(std::string x, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(std::string y, str(ins.c));
        r[ins.a] = Value::Boolean(Contains(x, y));
        break;
      }
      case OpCode::kSubstringBefore: {
        NATIX_ASSIGN_OR_RETURN(std::string x, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(std::string y, str(ins.c));
        r[ins.a] = Value::String(SubstringBefore(x, y));
        break;
      }
      case OpCode::kSubstringAfter: {
        NATIX_ASSIGN_OR_RETURN(std::string x, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(std::string y, str(ins.c));
        r[ins.a] = Value::String(SubstringAfter(x, y));
        break;
      }
      case OpCode::kSubstring2: {
        NATIX_ASSIGN_OR_RETURN(std::string s, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(double pos, num(ins.c));
        r[ins.a] = Value::String(XPathSubstring(s, pos, 0, false));
        break;
      }
      case OpCode::kSubstring3: {
        NATIX_ASSIGN_OR_RETURN(std::string s, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(double pos, num(ins.c));
        NATIX_ASSIGN_OR_RETURN(double len, num(ins.d));
        r[ins.a] = Value::String(XPathSubstring(s, pos, len, true));
        break;
      }
      case OpCode::kStringLength: {
        NATIX_ASSIGN_OR_RETURN(std::string s, str(ins.b));
        r[ins.a] = Value::Number(static_cast<double>(Utf8Length(s)));
        break;
      }
      case OpCode::kNormalizeSpace: {
        NATIX_ASSIGN_OR_RETURN(std::string s, str(ins.b));
        r[ins.a] = Value::String(NormalizeSpace(s));
        break;
      }
      case OpCode::kTranslate: {
        NATIX_ASSIGN_OR_RETURN(std::string s, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(std::string from, str(ins.c));
        NATIX_ASSIGN_OR_RETURN(std::string to, str(ins.d));
        r[ins.a] = Value::String(TranslateChars(s, from, to));
        break;
      }
      case OpCode::kFloor: {
        NATIX_ASSIGN_OR_RETURN(double x, num(ins.b));
        r[ins.a] = Value::Number(std::floor(x));
        break;
      }
      case OpCode::kCeiling: {
        NATIX_ASSIGN_OR_RETURN(double x, num(ins.b));
        r[ins.a] = Value::Number(std::ceil(x));
        break;
      }
      case OpCode::kRound: {
        NATIX_ASSIGN_OR_RETURN(double x, num(ins.b));
        r[ins.a] = Value::Number(XPathRound(x));
        break;
      }
      case OpCode::kRoot: {
        NATIX_ASSIGN_OR_RETURN(NodeRef n, node(ins.b));
        NATIX_ASSIGN_OR_RETURN(NodeRef root, RootOf(n, ctx));
        r[ins.a] = Value::Node(root);
        break;
      }
      case OpCode::kNodeName:
      case OpCode::kNodeLocalName: {
        NATIX_ASSIGN_OR_RETURN(NodeRef n, node(ins.b));
        storage::NodeRecord record;
        NATIX_RETURN_IF_ERROR(ctx.store->ReadNode(n.node_id(), &record));
        std::string name;
        if (record.name_id != storage::kInvalidNameId) {
          name = ctx.store->names()->NameOf(record.name_id);
        }
        if (ins.op == OpCode::kNodeLocalName) {
          auto colon = name.rfind(':');
          if (colon != std::string::npos) name = name.substr(colon + 1);
        }
        r[ins.a] = Value::String(std::move(name));
        break;
      }
      case OpCode::kLang: {
        NATIX_ASSIGN_OR_RETURN(std::string wanted, str(ins.b));
        NATIX_ASSIGN_OR_RETURN(NodeRef n, node(ins.c));
        NATIX_ASSIGN_OR_RETURN(bool match, LangMatches(wanted, n, ctx));
        r[ins.a] = Value::Boolean(match);
        break;
      }
      case OpCode::kEvalNested: {
        NATIX_ASSIGN_OR_RETURN(Value v, nested(ins.b));
        r[ins.a] = std::move(v);
        break;
      }
      case OpCode::kMove:
        r[ins.a] = r[ins.b];
        break;
      case OpCode::kCmpAttrConst: {
        const bool swapped = (ins.d & kCmpFlagBit) != 0;
        const auto op = static_cast<runtime::CompareOp>(ins.d & 0xFF);
        const Value& attr = tuple[ins.b];
        const Value& constant = program_->constants[ins.c];
        NATIX_ASSIGN_OR_RETURN(
            bool out, swapped
                          ? runtime::CompareAtomic(op, constant, attr, ctx)
                          : runtime::CompareAtomic(op, attr, constant, ctx));
        r[ins.a] = Value::Boolean(out);
        break;
      }
      case OpCode::kCmpBranch: {
        const bool sense = (ins.d & kCmpFlagBit) != 0;
        const auto op = static_cast<runtime::CompareOp>(ins.d & 0xFF);
        NATIX_ASSIGN_OR_RETURN(
            bool out, runtime::CompareAtomic(op, r[ins.b], r[ins.c], ctx));
        if (out == sense) {
          pc = ins.a;
          continue;
        }
        break;
      }
      case OpCode::kHalt:
        if (retired != nullptr) *retired += executed;
        return r[ins.a];
    }
    ++pc;
  }
  return Status::Internal("NVM program fell off the end (missing halt)");
}

}  // namespace natix::nvm
