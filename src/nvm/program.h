#ifndef NATIX_NVM_PROGRAM_H_
#define NATIX_NVM_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/value.h"

namespace natix::nvm {

/// Opcodes of the Natix Virtual Machine: an assembler-like register
/// program evaluating the non-sequence-valued subscripts of the physical
/// algebra (Sec. 5.2.2). Registers hold runtime::Value. `a` is always the
/// destination.
enum class OpCode : uint8_t {
  kLoadConst,   // r[a] = consts[b]
  kLoadAttr,    // r[a] = tuple registers[b] (attribute access)
  kLoadVar,     // r[a] = execution-context variable names[b]
  // Arithmetic (operands converted with number()):
  kAdd,         // r[a] = r[b] + r[c]
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,         // r[a] = -r[b]
  // Boolean:
  kNot,         // r[a] = not boolean(r[b])
  kToBool,      // r[a] = boolean(r[b])
  kToNum,       // r[a] = number(r[b])
  kToStr,       // r[a] = string(r[b])
  kCompare,     // r[a] = r[b] <cmp d> r[c]  (atomic promotion rules)
  // Control flow (short-circuit and/or):
  kJump,        // pc = b
  kJumpIfTrue,  // if boolean(r[a]) pc = b
  kJumpIfFalse, // if not boolean(r[a]) pc = b
  // String functions:
  kConcat2,        // r[a] = string(r[b]) + string(r[c])
  kStartsWith,     // r[a] = starts-with(r[b], r[c])
  kContains,
  kSubstringBefore,
  kSubstringAfter,
  kSubstring2,     // r[a] = substring(r[b], r[c])         (XPath rounding)
  kSubstring3,     // r[a] = substring(r[b], r[c], r[d])
  kStringLength,   // r[a] = string-length(r[b])
  kNormalizeSpace,
  kTranslate,      // r[a] = translate(r[b], r[c], r[d])
  // Number functions:
  kFloor,
  kCeiling,
  kRound,
  // Node navigation against the page buffer (Sec. 5.2.2):
  kRoot,           // r[a] = document node of node r[b]
  kNodeName,       // r[a] = name of node r[b] ("" for unnamed kinds)
  kNodeLocalName,  // r[a] = local part of the name of node r[b]
  kLang,           // r[a] = lang-test(string r[b], context node r[c])
  // Nested iterator access (Sec. 5.2.3):
  kEvalNested,     // r[a] = aggregated result of nested plan #b
  kHalt,           // return r[a]
  // Emitted only by the analysis-justified optimizer
  // (src/analysis/nvm_optimizer.h), never by the assembler:
  kMove,           // r[a] = r[b]
  // Superinstruction fusing load_attr + load_const + compare. d bits 0-7
  // encode the runtime::CompareOp; d bit 8 swaps the operand order
  // (constant on the left).
  kCmpAttrConst,   // r[a] = tuple[b] <cmp d&0xFF> consts[c]
  // Superinstruction fusing compare + conditional jump. d bits 0-7
  // encode the CompareOp; d bit 8 is the branch sense (1: jump when the
  // comparison holds). The jump target lives in `a`.
  kCmpBranch       // if (r[b] <cmp d&0xFF> r[c]) == sense(d bit 8) pc = a
};

/// Flag bit 8 of the d operand of kCmpAttrConst (operand swap) and
/// kCmpBranch (branch sense).
inline constexpr uint16_t kCmpFlagBit = 0x100;

const char* OpCodeName(OpCode op);

struct Instruction {
  OpCode op = OpCode::kHalt;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  uint16_t d = 0;  // third operand / comparison op / jump slack
};

/// A compiled NVM program.
struct Program {
  std::vector<Instruction> code;
  std::vector<runtime::Value> constants;
  /// Execution-context variable names referenced by kLoadVar.
  std::vector<std::string> variable_names;
  /// Number of NVM registers the program uses.
  uint16_t register_count = 0;

  /// Disassembly for tests and plan explain output.
  std::string Disassemble() const;
};

}  // namespace natix::nvm

#endif  // NATIX_NVM_PROGRAM_H_
