#ifndef NATIX_INTERP_EVALUATOR_H_
#define NATIX_INTERP_EVALUATOR_H_

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/statusor.h"
#include "dom/dom.h"
#include "xpath/ast.h"

namespace natix::interp {

/// An XPath 1.0 object as the recommendation defines it: node-set (kept
/// sorted in document order, duplicate-free), boolean, number, or string.
struct Object {
  enum class Kind : uint8_t { kNodeSet, kBoolean, kNumber, kString };
  Kind kind = Kind::kNodeSet;
  std::vector<const dom::Node*> nodes;
  bool boolean = false;
  double number = 0;
  std::string string;

  static Object NodeSet(std::vector<const dom::Node*> n);
  static Object Boolean(bool b);
  static Object Number(double n);
  static Object String(std::string s);
};

struct EvaluatorOptions {
  /// With memoization the interpreter caches per-(step, context node)
  /// results — the Gottlob et al. [7,8] technique that xsltproc/
  /// Xalan-class engines approximate.
  bool memoize = true;
  /// Consolidate (sort + deduplicate) the context set between location
  /// steps. Disabling both flags yields the textbook recursive evaluator
  /// whose duplicate contexts multiply across steps — the worst-case
  /// exponential behaviour bench_exponential demonstrates.
  bool consolidate_steps = true;
};

/// A faithful main-memory XPath 1.0 interpreter over the DOM: the
/// reproduction's stand-in for the paper's comparison systems (xsltproc
/// [17] and Xalan [20]) and the conformance oracle for the algebraic
/// engine.
class Evaluator {
 public:
  Evaluator(const dom::Document* document, const EvaluatorOptions& options)
      : document_(document), options_(options) {}

  void SetVariable(const std::string& name, Object value) {
    variables_[name] = std::move(value);
  }

  /// Evaluates an analyzed AST with `context` as the context node
  /// (position 1 of a size-1 context).
  StatusOr<Object> Evaluate(const xpath::Expr& root,
                            const dom::Node* context);

  /// Convenience: full pipeline (parse, sema, fold, normalize) and
  /// evaluate.
  static StatusOr<Object> Run(const dom::Document* document,
                              std::string_view query,
                              const dom::Node* context,
                              const EvaluatorOptions& options);

  uint64_t steps_evaluated() const { return steps_evaluated_; }

 private:
  struct Context {
    const dom::Node* node = nullptr;
    size_t position = 1;
    size_t size = 1;
  };

  StatusOr<Object> Eval(const xpath::Expr& e, const Context& ctx);
  StatusOr<Object> EvalBinary(const xpath::Expr& e, const Context& ctx);
  StatusOr<Object> EvalCall(const xpath::Expr& e, const Context& ctx);
  StatusOr<Object> EvalComparison(const xpath::Expr& e, const Context& ctx);
  StatusOr<std::vector<const dom::Node*>> EvalPath(
      const xpath::Expr& e, const Context& ctx);
  StatusOr<std::vector<const dom::Node*>> EvalSteps(
      std::vector<const dom::Node*> input,
      const std::vector<xpath::Step>& steps);
  StatusOr<std::vector<const dom::Node*>> EvalStep(const dom::Node* context,
                                                   const xpath::Step& step);
  Status ApplyPredicates(const std::vector<xpath::ExprPtr>& predicates,
                         bool forward_axis,
                         std::vector<const dom::Node*>* nodes);

  // Axis enumeration in axis order.
  static std::vector<const dom::Node*> AxisNodes(const dom::Node* context,
                                                 runtime::Axis axis);
  static bool TestNode(const dom::Node* node, const xpath::AstNodeTest& test,
                       bool principal_is_attribute);

  // Conversions (recommendation Sec. 3/4 semantics).
  double ToNumber(const Object& v) const;
  std::string ToString(const Object& v) const;
  bool ToBoolean(const Object& v) const;

  const dom::Document* document_;
  EvaluatorOptions options_;
  std::unordered_map<std::string, Object> variables_;
  /// Lazily built id-attribute index (id token -> element).
  std::unordered_map<std::string, const dom::Node*> id_index_;
  bool id_index_built_ = false;
  /// Memo table: (expression, context node) -> node-set result.
  std::map<std::pair<const xpath::Expr*, const dom::Node*>,
           std::vector<const dom::Node*>>
      memo_;
  uint64_t steps_evaluated_ = 0;
};

}  // namespace natix::interp

#endif  // NATIX_INTERP_EVALUATOR_H_
