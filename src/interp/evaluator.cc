#include "interp/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/strings.h"
#include "base/xpath_number.h"
#include "xpath/fold.h"
#include "xpath/functions.h"
#include "xpath/normalizer.h"
#include "xpath/parser.h"
#include "xpath/sema.h"

namespace natix::interp {

namespace {

using dom::Node;
using dom::NodeKind;
using runtime::Axis;
using xpath::AstNodeTest;
using xpath::BinaryOp;
using xpath::Expr;
using xpath::ExprKind;
using xpath::FunctionId;
using xpath::Step;

void SortUnique(std::vector<const Node*>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const Node* a, const Node* b) { return a->order < b->order; });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

void CollectDescendants(const Node* node, std::vector<const Node*>* out) {
  for (const Node* child : node->children) {
    out->push_back(child);
    CollectDescendants(child, out);
  }
}

}  // namespace

Object Object::NodeSet(std::vector<const Node*> n) {
  Object v;
  v.kind = Kind::kNodeSet;
  v.nodes = std::move(n);
  SortUnique(&v.nodes);
  return v;
}
Object Object::Boolean(bool b) {
  Object v;
  v.kind = Kind::kBoolean;
  v.boolean = b;
  return v;
}
Object Object::Number(double n) {
  Object v;
  v.kind = Kind::kNumber;
  v.number = n;
  return v;
}
Object Object::String(std::string s) {
  Object v;
  v.kind = Kind::kString;
  v.string = std::move(s);
  return v;
}

double Evaluator::ToNumber(const Object& v) const {
  switch (v.kind) {
    case Object::Kind::kNumber:
      return v.number;
    case Object::Kind::kBoolean:
      return v.boolean ? 1 : 0;
    case Object::Kind::kString:
      return StringToXPathNumber(v.string);
    case Object::Kind::kNodeSet:
      return StringToXPathNumber(ToString(v));
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::string Evaluator::ToString(const Object& v) const {
  switch (v.kind) {
    case Object::Kind::kString:
      return v.string;
    case Object::Kind::kBoolean:
      return v.boolean ? "true" : "false";
    case Object::Kind::kNumber:
      return XPathNumberToString(v.number);
    case Object::Kind::kNodeSet:
      return v.nodes.empty() ? "" : v.nodes.front()->StringValue();
  }
  return "";
}

bool Evaluator::ToBoolean(const Object& v) const {
  switch (v.kind) {
    case Object::Kind::kBoolean:
      return v.boolean;
    case Object::Kind::kNumber:
      return v.number != 0 && !std::isnan(v.number);
    case Object::Kind::kString:
      return !v.string.empty();
    case Object::Kind::kNodeSet:
      return !v.nodes.empty();
  }
  return false;
}

std::vector<const Node*> Evaluator::AxisNodes(const Node* context,
                                              Axis axis) {
  std::vector<const Node*> out;
  const bool is_attribute = context->kind == NodeKind::kAttribute;
  switch (axis) {
    case Axis::kSelf:
      out.push_back(context);
      break;
    case Axis::kChild:
      if (!is_attribute) {
        out.assign(context->children.begin(), context->children.end());
      }
      break;
    case Axis::kAttribute:
      out.assign(context->attributes.begin(), context->attributes.end());
      break;
    case Axis::kParent:
      if (context->parent != nullptr) out.push_back(context->parent);
      break;
    case Axis::kAncestor:
      for (const Node* a = context->parent; a != nullptr; a = a->parent) {
        out.push_back(a);
      }
      break;
    case Axis::kAncestorOrSelf:
      for (const Node* a = context; a != nullptr; a = a->parent) {
        out.push_back(a);
      }
      break;
    case Axis::kDescendant:
      if (!is_attribute) CollectDescendants(context, &out);
      break;
    case Axis::kDescendantOrSelf:
      out.push_back(context);
      if (!is_attribute) CollectDescendants(context, &out);
      break;
    case Axis::kFollowingSibling:
      if (!is_attribute) {
        for (const Node* s = context->NextSibling(); s != nullptr;
             s = s->NextSibling()) {
          out.push_back(s);
        }
      }
      break;
    case Axis::kPrecedingSibling:
      if (!is_attribute) {
        for (const Node* s = context->PreviousSibling(); s != nullptr;
             s = s->PreviousSibling()) {
          out.push_back(s);
        }
      }
      break;
    case Axis::kFollowing: {
      const Node* base = is_attribute ? context->parent : context;
      if (is_attribute) {
        // The owner's subtree follows the attribute in document order.
        CollectDescendants(base, &out);
      }
      for (const Node* n = base; n != nullptr; n = n->parent) {
        for (const Node* s = n->NextSibling(); s != nullptr;
             s = s->NextSibling()) {
          out.push_back(s);
          CollectDescendants(s, &out);
        }
      }
      break;
    }
    case Axis::kPreceding: {
      const Node* base = is_attribute ? context->parent : context;
      // Reverse document order: climb, taking earlier siblings' subtrees.
      for (const Node* n = base; n != nullptr; n = n->parent) {
        for (const Node* s = n->PreviousSibling(); s != nullptr;
             s = s->PreviousSibling()) {
          std::vector<const Node*> subtree;
          subtree.push_back(s);
          CollectDescendants(s, &subtree);
          // Reverse document order within the subtree.
          for (auto it = subtree.rbegin(); it != subtree.rend(); ++it) {
            out.push_back(*it);
          }
        }
      }
      break;
    }
  }
  return out;
}

bool Evaluator::TestNode(const Node* node, const AstNodeTest& test,
                         bool principal_is_attribute) {
  NodeKind principal =
      principal_is_attribute ? NodeKind::kAttribute : NodeKind::kElement;
  switch (test.kind) {
    case AstNodeTest::Kind::kName:
      return node->kind == principal && node->name == test.name;
    case AstNodeTest::Kind::kAnyName:
      return node->kind == principal;
    case AstNodeTest::Kind::kText:
      return node->kind == NodeKind::kText;
    case AstNodeTest::Kind::kComment:
      return node->kind == NodeKind::kComment;
    case AstNodeTest::Kind::kPi:
      return node->kind == NodeKind::kProcessingInstruction;
    case AstNodeTest::Kind::kPiTarget:
      return node->kind == NodeKind::kProcessingInstruction &&
             node->name == test.name;
    case AstNodeTest::Kind::kAnyKind:
      return true;
  }
  return false;
}

Status Evaluator::ApplyPredicates(
    const std::vector<xpath::ExprPtr>& predicates, bool forward_axis,
    std::vector<const Node*>* nodes) {
  // `nodes` arrives in axis order (proximity order for reverse axes).
  (void)forward_axis;
  for (const xpath::ExprPtr& predicate : predicates) {
    std::vector<const Node*> passed;
    size_t size = nodes->size();
    for (size_t i = 0; i < size; ++i) {
      Context ctx;
      ctx.node = (*nodes)[i];
      ctx.position = i + 1;
      ctx.size = size;
      NATIX_ASSIGN_OR_RETURN(Object result, Eval(*predicate, ctx));
      if (ToBoolean(result)) passed.push_back(ctx.node);
    }
    *nodes = std::move(passed);
  }
  return Status::OK();
}

StatusOr<std::vector<const Node*>> Evaluator::EvalStep(const Node* context,
                                                       const Step& step) {
  if (options_.memoize) {
    auto it = memo_.find({reinterpret_cast<const Expr*>(&step), context});
    if (it != memo_.end()) return it->second;
  }
  ++steps_evaluated_;
  std::vector<const Node*> nodes = AxisNodes(context, step.axis);
  const bool principal_is_attribute = step.axis == Axis::kAttribute;
  nodes.erase(std::remove_if(nodes.begin(), nodes.end(),
                             [&](const Node* n) {
                               return !TestNode(n, step.test,
                                                principal_is_attribute);
                             }),
              nodes.end());
  NATIX_RETURN_IF_ERROR(ApplyPredicates(
      step.predicates, !runtime::AxisIsReverse(step.axis), &nodes));
  if (options_.memoize) {
    memo_[{reinterpret_cast<const Expr*>(&step), context}] = nodes;
  }
  return nodes;
}

StatusOr<std::vector<const Node*>> Evaluator::EvalSteps(
    std::vector<const Node*> input, const std::vector<Step>& steps) {
  std::vector<const Node*> current = std::move(input);
  for (const Step& step : steps) {
    std::vector<const Node*> next;
    for (const Node* node : current) {
      NATIX_ASSIGN_OR_RETURN(std::vector<const Node*> produced,
                             EvalStep(node, step));
      next.insert(next.end(), produced.begin(), produced.end());
    }
    // Without consolidation duplicate contexts survive and multiply
    // (the final Object::NodeSet still deduplicates, preserving
    // semantics — only the work is exponential).
    if (options_.consolidate_steps) SortUnique(&next);
    current = std::move(next);
  }
  return current;
}

StatusOr<std::vector<const Node*>> Evaluator::EvalPath(const Expr& e,
                                                       const Context& ctx) {
  std::vector<const Node*> start;
  if (e.kind == ExprKind::kLocationPath) {
    if (e.absolute) {
      start.push_back(document_->root());
    } else {
      start.push_back(ctx.node);
    }
    return EvalSteps(std::move(start), e.steps);
  }
  // kPathExpr: children[0] provides the context node set.
  NATIX_ASSIGN_OR_RETURN(Object base, Eval(*e.children[0], ctx));
  if (base.kind != Object::Kind::kNodeSet) {
    return Status::Internal("path expression base is not a node-set");
  }
  return EvalSteps(std::move(base.nodes), e.steps);
}

StatusOr<Object> Evaluator::EvalComparison(const Expr& e,
                                           const Context& ctx) {
  NATIX_ASSIGN_OR_RETURN(Object lhs, Eval(*e.children[0], ctx));
  NATIX_ASSIGN_OR_RETURN(Object rhs, Eval(*e.children[1], ctx));

  auto numeric = [&](double a, double b) -> bool {
    switch (e.op) {
      case BinaryOp::kEq:
        return a == b;
      case BinaryOp::kNe:
        return a != b;
      case BinaryOp::kLt:
        return a < b;
      case BinaryOp::kLe:
        return a <= b;
      case BinaryOp::kGt:
        return a > b;
      default:
        return a >= b;
    }
  };

  bool lhs_ns = lhs.kind == Object::Kind::kNodeSet;
  bool rhs_ns = rhs.kind == Object::Kind::kNodeSet;

  if (lhs_ns || rhs_ns) {
    // Existential semantics over node string-values.
    auto atom_vs_node = [&](const Object& atom, const Node* node,
                            bool node_on_left) -> bool {
      std::string sv = node->StringValue();
      if (e.op == BinaryOp::kEq || e.op == BinaryOp::kNe) {
        bool eq;
        if (atom.kind == Object::Kind::kBoolean) {
          eq = atom.boolean;  // node exists, so boolean(ns-side) is true
        } else if (atom.kind == Object::Kind::kNumber) {
          eq = StringToXPathNumber(sv) == atom.number;
        } else {
          eq = sv == atom.string;
        }
        return e.op == BinaryOp::kEq ? eq : !eq;
      }
      double nv = StringToXPathNumber(sv);
      double av = ToNumber(atom);
      return node_on_left ? numeric(nv, av) : numeric(av, nv);
    };

    if (lhs_ns && rhs_ns) {
      if (e.op == BinaryOp::kEq || e.op == BinaryOp::kNe) {
        for (const Node* a : lhs.nodes) {
          std::string sa = a->StringValue();
          for (const Node* b : rhs.nodes) {
            bool eq = sa == b->StringValue();
            if ((e.op == BinaryOp::kEq) == eq) return Object::Boolean(true);
          }
        }
        return Object::Boolean(false);
      }
      for (const Node* a : lhs.nodes) {
        double na = StringToXPathNumber(a->StringValue());
        for (const Node* b : rhs.nodes) {
          if (numeric(na, StringToXPathNumber(b->StringValue()))) {
            return Object::Boolean(true);
          }
        }
      }
      return Object::Boolean(false);
    }
    const Object& ns = lhs_ns ? lhs : rhs;
    const Object& atom = lhs_ns ? rhs : lhs;
    if ((e.op == BinaryOp::kEq || e.op == BinaryOp::kNe) &&
        atom.kind == Object::Kind::kBoolean) {
      bool eq = ToBoolean(ns) == atom.boolean;
      return Object::Boolean(e.op == BinaryOp::kEq ? eq : !eq);
    }
    for (const Node* node : ns.nodes) {
      if (atom_vs_node(atom, node, /*node_on_left=*/lhs_ns)) {
        return Object::Boolean(true);
      }
    }
    return Object::Boolean(false);
  }

  // Atomic comparison with type promotion.
  if (e.op != BinaryOp::kEq && e.op != BinaryOp::kNe) {
    return Object::Boolean(numeric(ToNumber(lhs), ToNumber(rhs)));
  }
  bool eq;
  if (lhs.kind == Object::Kind::kBoolean ||
      rhs.kind == Object::Kind::kBoolean) {
    eq = ToBoolean(lhs) == ToBoolean(rhs);
  } else if (lhs.kind == Object::Kind::kNumber ||
             rhs.kind == Object::Kind::kNumber) {
    eq = ToNumber(lhs) == ToNumber(rhs);
  } else {
    eq = ToString(lhs) == ToString(rhs);
  }
  return Object::Boolean(e.op == BinaryOp::kEq ? eq : !eq);
}

StatusOr<Object> Evaluator::EvalBinary(const Expr& e, const Context& ctx) {
  switch (e.op) {
    case BinaryOp::kOr:
    case BinaryOp::kAnd: {
      NATIX_ASSIGN_OR_RETURN(Object lhs, Eval(*e.children[0], ctx));
      bool lv = ToBoolean(lhs);
      if (e.op == BinaryOp::kOr && lv) return Object::Boolean(true);
      if (e.op == BinaryOp::kAnd && !lv) return Object::Boolean(false);
      NATIX_ASSIGN_OR_RETURN(Object rhs, Eval(*e.children[1], ctx));
      return Object::Boolean(ToBoolean(rhs));
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      NATIX_ASSIGN_OR_RETURN(Object lhs, Eval(*e.children[0], ctx));
      NATIX_ASSIGN_OR_RETURN(Object rhs, Eval(*e.children[1], ctx));
      double a = ToNumber(lhs);
      double b = ToNumber(rhs);
      switch (e.op) {
        case BinaryOp::kAdd:
          return Object::Number(a + b);
        case BinaryOp::kSub:
          return Object::Number(a - b);
        case BinaryOp::kMul:
          return Object::Number(a * b);
        case BinaryOp::kDiv:
          return Object::Number(a / b);
        default:
          return Object::Number(std::fmod(a, b));
      }
    }
    default:
      return EvalComparison(e, ctx);
  }
}

StatusOr<Object> Evaluator::EvalCall(const Expr& e, const Context& ctx) {
  auto fid = static_cast<FunctionId>(e.function_id);
  auto arg = [&](size_t i) -> StatusOr<Object> {
    return Eval(*e.children[i], ctx);
  };
  switch (fid) {
    case FunctionId::kLast:
      return Object::Number(static_cast<double>(ctx.size));
    case FunctionId::kPosition:
      return Object::Number(static_cast<double>(ctx.position));
    case FunctionId::kCount: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::Number(static_cast<double>(v.nodes.size()));
    }
    case FunctionId::kSum: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      double sum = 0;
      for (const Node* n : v.nodes) {
        sum += StringToXPathNumber(n->StringValue());
      }
      return Object::Number(sum);
    }
    case FunctionId::kId: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      std::vector<std::string> tokens;
      if (v.kind == Object::Kind::kNodeSet) {
        for (const Node* n : v.nodes) {
          for (std::string& t : SplitWhitespace(n->StringValue())) {
            tokens.push_back(std::move(t));
          }
        }
      } else {
        tokens = SplitWhitespace(ToString(v));
      }
      if (!id_index_built_) {
        // One document scan builds the id index (elements' `id`
        // attributes; the first occurrence of a value wins).
        std::vector<const Node*> all;
        all.push_back(document_->root());
        CollectDescendants(document_->root(), &all);
        for (const Node* n : all) {
          if (n->kind != NodeKind::kElement) continue;
          for (const Node* attr : n->attributes) {
            if (attr->name == "id") {
              id_index_.emplace(attr->value, n);
              break;
            }
          }
        }
        id_index_built_ = true;
      }
      std::vector<const Node*> result;
      for (const std::string& token : tokens) {
        auto it = id_index_.find(token);
        if (it != id_index_.end()) result.push_back(it->second);
      }
      return Object::NodeSet(std::move(result));
    }
    case FunctionId::kLocalName:
    case FunctionId::kName: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      if (v.nodes.empty()) return Object::String("");
      std::string name = v.nodes.front()->name;
      if (fid == FunctionId::kLocalName) {
        auto colon = name.rfind(':');
        if (colon != std::string::npos) name = name.substr(colon + 1);
      }
      return Object::String(std::move(name));
    }
    case FunctionId::kNamespaceUri:
      return Object::String("");  // no namespace processing in this build
    case FunctionId::kString: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::String(ToString(v));
    }
    case FunctionId::kConcat: {
      std::string out;
      for (size_t i = 0; i < e.children.size(); ++i) {
        NATIX_ASSIGN_OR_RETURN(Object v, arg(i));
        out += ToString(v);
      }
      return Object::String(std::move(out));
    }
    case FunctionId::kStartsWith: {
      NATIX_ASSIGN_OR_RETURN(Object a, arg(0));
      NATIX_ASSIGN_OR_RETURN(Object b, arg(1));
      return Object::Boolean(StartsWith(ToString(a), ToString(b)));
    }
    case FunctionId::kContains: {
      NATIX_ASSIGN_OR_RETURN(Object a, arg(0));
      NATIX_ASSIGN_OR_RETURN(Object b, arg(1));
      return Object::Boolean(Contains(ToString(a), ToString(b)));
    }
    case FunctionId::kSubstringBefore: {
      NATIX_ASSIGN_OR_RETURN(Object a, arg(0));
      NATIX_ASSIGN_OR_RETURN(Object b, arg(1));
      return Object::String(SubstringBefore(ToString(a), ToString(b)));
    }
    case FunctionId::kSubstringAfter: {
      NATIX_ASSIGN_OR_RETURN(Object a, arg(0));
      NATIX_ASSIGN_OR_RETURN(Object b, arg(1));
      return Object::String(SubstringAfter(ToString(a), ToString(b)));
    }
    case FunctionId::kSubstring: {
      NATIX_ASSIGN_OR_RETURN(Object s, arg(0));
      NATIX_ASSIGN_OR_RETURN(Object p, arg(1));
      std::string str = ToString(s);
      double pos = XPathRound(ToNumber(p));
      double end = 0;
      bool has_len = e.children.size() == 3;
      if (has_len) {
        NATIX_ASSIGN_OR_RETURN(Object l, arg(2));
        end = pos + XPathRound(ToNumber(l));
      }
      std::string out;
      size_t cp = 1;
      for (size_t i = 0; i < str.size(); ++cp) {
        size_t before = i;
        Utf8Decode(str, i);
        double dp = static_cast<double>(cp);
        if (dp >= pos && (!has_len || dp < end)) {
          out.append(str, before, i - before);
        }
      }
      return Object::String(std::move(out));
    }
    case FunctionId::kStringLength: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::Number(static_cast<double>(Utf8Length(ToString(v))));
    }
    case FunctionId::kNormalizeSpace: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::String(NormalizeSpace(ToString(v)));
    }
    case FunctionId::kTranslate: {
      NATIX_ASSIGN_OR_RETURN(Object s, arg(0));
      NATIX_ASSIGN_OR_RETURN(Object f, arg(1));
      NATIX_ASSIGN_OR_RETURN(Object t, arg(2));
      return Object::String(
          TranslateChars(ToString(s), ToString(f), ToString(t)));
    }
    case FunctionId::kBoolean: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::Boolean(ToBoolean(v));
    }
    case FunctionId::kNot: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::Boolean(!ToBoolean(v));
    }
    case FunctionId::kTrue:
      return Object::Boolean(true);
    case FunctionId::kFalse:
      return Object::Boolean(false);
    case FunctionId::kLang: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      std::string wanted = ToString(v);
      auto lower = [](std::string s) {
        for (char& c : s) {
          if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
        }
        return s;
      };
      std::string lw = lower(wanted);
      const Node* n = ctx.node;
      if (n->kind == NodeKind::kAttribute) n = n->parent;
      for (; n != nullptr; n = n->parent) {
        for (const Node* attr : n->attributes) {
          if (attr->name != "xml:lang") continue;
          std::string lv = lower(attr->value);
          return Object::Boolean(lv == lw ||
                                 (lv.size() > lw.size() &&
                                  lv.compare(0, lw.size(), lw) == 0 &&
                                  lv[lw.size()] == '-'));
        }
      }
      return Object::Boolean(false);
    }
    case FunctionId::kNumber: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::Number(ToNumber(v));
    }
    case FunctionId::kFloor: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::Number(std::floor(ToNumber(v)));
    }
    case FunctionId::kCeiling: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::Number(std::ceil(ToNumber(v)));
    }
    case FunctionId::kRound: {
      NATIX_ASSIGN_OR_RETURN(Object v, arg(0));
      return Object::Number(XPathRound(ToNumber(v)));
    }
    default:
      return Status::Internal("interpreter: unsupported function id");
  }
}

StatusOr<Object> Evaluator::Eval(const Expr& e, const Context& ctx) {
  switch (e.kind) {
    case ExprKind::kNumberLiteral:
      return Object::Number(e.number);
    case ExprKind::kBooleanLiteral:
      return Object::Boolean(e.boolean);
    case ExprKind::kStringLiteral:
      return Object::String(e.string_value);
    case ExprKind::kVariable: {
      auto it = variables_.find(e.name);
      if (it == variables_.end()) {
        return Status::InvalidArgument("unbound variable $" + e.name);
      }
      return it->second;
    }
    case ExprKind::kNegate: {
      NATIX_ASSIGN_OR_RETURN(Object v, Eval(*e.children[0], ctx));
      return Object::Number(-ToNumber(v));
    }
    case ExprKind::kBinary:
      return EvalBinary(e, ctx);
    case ExprKind::kFunctionCall:
      return EvalCall(e, ctx);
    case ExprKind::kUnion: {
      std::vector<const Node*> all;
      for (const xpath::ExprPtr& branch : e.children) {
        NATIX_ASSIGN_OR_RETURN(Object v, Eval(*branch, ctx));
        if (v.kind != Object::Kind::kNodeSet) {
          return Status::Internal("union branch is not a node-set");
        }
        all.insert(all.end(), v.nodes.begin(), v.nodes.end());
      }
      return Object::NodeSet(std::move(all));
    }
    case ExprKind::kLocationPath:
    case ExprKind::kPathExpr: {
      NATIX_ASSIGN_OR_RETURN(std::vector<const Node*> nodes,
                             EvalPath(e, ctx));
      return Object::NodeSet(std::move(nodes));
    }
    case ExprKind::kFilterExpr: {
      NATIX_ASSIGN_OR_RETURN(Object base, Eval(*e.children[0], ctx));
      if (base.kind != Object::Kind::kNodeSet) {
        return Status::Internal("filter base is not a node-set");
      }
      // Filter predicates count in document order (the nodes are sorted).
      NATIX_RETURN_IF_ERROR(ApplyPredicates(e.predicates,
                                            /*forward_axis=*/true,
                                            &base.nodes));
      return base;
    }
  }
  return Status::Internal("interpreter: unknown expression kind");
}

StatusOr<Object> Evaluator::Evaluate(const Expr& root, const Node* context) {
  Context ctx;
  ctx.node = context;
  return Eval(root, ctx);
}

StatusOr<Object> Evaluator::Run(const dom::Document* document,
                                std::string_view query, const Node* context,
                                const EvaluatorOptions& options) {
  NATIX_ASSIGN_OR_RETURN(xpath::ExprPtr ast, xpath::ParseXPath(query));
  NATIX_RETURN_IF_ERROR(xpath::Analyze(ast.get()));
  xpath::FoldConstants(ast.get());
  xpath::Normalize(ast.get());
  Evaluator evaluator(document, options);
  return evaluator.Evaluate(*ast, context);
}

}  // namespace natix::interp
